"""Synthetic co-authorship hypergraphs.

Formation mechanism mimicked from the real co-authorship data (coauth-DBLP,
coauth-geology, coauth-history): authors belong to overlapping research
groups, papers are written by small author sets drawn from one group with
productivity-weighted (heavy-tailed) selection, and follow-up papers often
reuse a subset of a previous team plus a newcomer. The team-reuse step is what
produces the nested/overlapping triples (the paper observes h-motifs 10–12 are
over-represented in co-authorship data).
"""

from __future__ import annotations

from typing import List

from repro.generators.base import (
    assign_overlapping_communities,
    bounded_size,
    weighted_sample_without_replacement,
    zipf_weights,
)
from repro.generators.base import unique_edges as _unique_edges
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int


def generate_coauthorship(
    num_authors: int = 600,
    num_papers: int = 400,
    num_groups: int = 30,
    mean_team_size: float = 3.0,
    max_team_size: int = 6,
    team_reuse_probability: float = 0.45,
    productivity_exponent: float = 1.1,
    seed: SeedLike = None,
    name: str = "coauthorship",
) -> Hypergraph:
    """Generate a co-authorship-like hypergraph.

    Parameters
    ----------
    team_reuse_probability:
        Probability that a new paper starts from a subset of a previous paper's
        team instead of a fresh draw; higher values produce more overlapping
        hyperedges and more closed h-motifs.
    productivity_exponent:
        Zipf exponent of author productivity within a group.
    """
    require_positive_int(num_authors, "num_authors")
    require_positive_int(num_papers, "num_papers")
    require_positive_int(num_groups, "num_groups")
    rng = ensure_rng(seed)
    groups = assign_overlapping_communities(
        num_authors, num_groups, mean_memberships=1.3, rng=rng
    )
    group_weights = [zipf_weights(len(members), productivity_exponent) for members in groups]

    papers: List[List[int]] = []
    for _ in range(num_papers):
        team_size = bounded_size(rng, mean_team_size, minimum=2, maximum=max_team_size)
        if papers and rng.random() < team_reuse_probability:
            # Follow-up paper: keep a subset of a recent team, add new members
            # from the same group as one of the retained authors.
            previous = papers[int(rng.integers(max(0, len(papers) - 50), len(papers)))]
            keep = max(1, min(len(previous) - 1, int(rng.integers(1, len(previous) + 1))))
            team = list(rng.choice(previous, size=keep, replace=False))
            anchor_group = int(rng.integers(0, len(groups)))
            pool = groups[anchor_group]
            weights = group_weights[anchor_group]
            while len(team) < team_size:
                addition = weighted_sample_without_replacement(pool, weights, 1, rng)
                if addition and addition[0] not in team:
                    team.append(addition[0])
                elif len(pool) <= len(team):
                    break
        else:
            group_index = int(rng.integers(0, len(groups)))
            pool = groups[group_index]
            weights = group_weights[group_index]
            team = weighted_sample_without_replacement(pool, weights, team_size, rng)
        if len(team) >= 2:
            papers.append([int(author) for author in set(team)])
    return Hypergraph(_unique_edges(papers), name=name)
