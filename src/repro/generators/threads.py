"""Synthetic discussion-thread hypergraphs.

Mechanism mimicked from the threads datasets (threads-ubuntu, threads-math): a
hyperedge groups all users participating in a thread. Participation mixes a
small set of highly active "answerers" who appear in many threads with a long
tail of askers who appear in few; threads vary widely in size. Because the
heavy participants co-occur in many otherwise-unrelated threads, triples often
overlap pairwise without a common core, which pushes the open motifs and
motifs 12/24 up, as the paper reports for threads data.
"""

from __future__ import annotations

from typing import List

from repro.generators.base import weighted_sample_without_replacement, zipf_weights
from repro.generators.base import unique_edges as _unique_edges
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int


def generate_threads(
    num_users: int = 500,
    num_threads: int = 350,
    mean_participants: float = 4.0,
    max_participants: int = 14,
    answerer_fraction: float = 0.05,
    answerer_probability: float = 0.8,
    activity_exponent: float = 1.3,
    seed: SeedLike = None,
    name: str = "threads",
) -> Hypergraph:
    """Generate a threads-like hypergraph.

    Parameters
    ----------
    answerer_fraction:
        Fraction of users who are heavy answerers.
    answerer_probability:
        Probability that a thread includes at least one heavy answerer.
    activity_exponent:
        Zipf exponent of overall user activity.
    """
    require_positive_int(num_users, "num_users")
    require_positive_int(num_threads, "num_threads")
    rng = ensure_rng(seed)
    activity = zipf_weights(num_users, activity_exponent)
    num_answerers = max(2, int(num_users * answerer_fraction))

    threads: List[List[int]] = []
    for _ in range(num_threads):
        size = 2 + int(rng.poisson(max(mean_participants - 2, 0.0)))
        size = min(size, max_participants)
        participants = weighted_sample_without_replacement(
            list(range(num_users)), activity, size, rng
        )
        if rng.random() < answerer_probability:
            answerer = int(rng.integers(0, num_answerers))
            if answerer not in participants:
                participants.append(answerer)
        participants = sorted(set(int(user) for user in participants))
        if len(participants) >= 2:
            threads.append(participants)
    return Hypergraph(_unique_edges(threads), name=name)
