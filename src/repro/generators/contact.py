"""Synthetic face-to-face contact hypergraphs.

Mechanism mimicked from the contact datasets (contact-primary, contact-high):
a small, fixed population partitioned into classes; group interactions are
small (2–5 people), overwhelmingly within a class, and the same core group
meets repeatedly with members joining or leaving. Repeated meetings of nested
subgroups produce the tightly-overlapping triples the paper highlights
(h-motifs 9, 13, 14 over-represented in contact data).
"""

from __future__ import annotations

from typing import List

from repro.generators.base import bounded_size
from repro.generators.base import unique_edges as _unique_edges
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int


def generate_contact(
    num_people: int = 120,
    num_interactions: int = 400,
    num_classes: int = 6,
    mean_group_size: float = 2.6,
    max_group_size: int = 5,
    repeat_probability: float = 0.55,
    cross_class_probability: float = 0.05,
    seed: SeedLike = None,
    name: str = "contact",
) -> Hypergraph:
    """Generate a contact-like hypergraph.

    Parameters
    ----------
    repeat_probability:
        Probability that an interaction is a variation of a recent one (same
        core participants with one person added or removed).
    cross_class_probability:
        Probability that an interaction mixes people from two classes
        (playground contacts in the primary-school data).
    """
    require_positive_int(num_people, "num_people")
    require_positive_int(num_interactions, "num_interactions")
    require_positive_int(num_classes, "num_classes")
    rng = ensure_rng(seed)
    classes: List[List[int]] = [[] for _ in range(num_classes)]
    for person in range(num_people):
        classes[person % num_classes].append(person)

    interactions: List[List[int]] = []
    for _ in range(num_interactions):
        size = bounded_size(rng, mean_group_size, minimum=2, maximum=max_group_size)
        if interactions and rng.random() < repeat_probability:
            base = list(
                interactions[int(rng.integers(max(0, len(interactions) - 30), len(interactions)))]
            )
            if len(base) > 2 and rng.random() < 0.5:
                base.pop(int(rng.integers(0, len(base))))
            else:
                home_class = classes[int(base[0]) % num_classes]
                base.append(int(home_class[int(rng.integers(0, len(home_class)))]))
            group = sorted(set(base))
        else:
            class_index = int(rng.integers(0, num_classes))
            pool = list(classes[class_index])
            if rng.random() < cross_class_probability:
                other = int(rng.integers(0, num_classes))
                pool = pool + list(classes[other])
            size = min(size, len(pool))
            group = sorted(
                int(person) for person in rng.choice(pool, size=size, replace=False)
            )
        if len(group) >= 2:
            interactions.append(group)
    return Hypergraph(_unique_edges(interactions), name=name)
