"""Shared helpers for the synthetic hypergraph generators.

The paper's discoveries are made on 11 real hypergraphs from 5 domains
(co-authorship, contact, email, tags, threads). Those datasets are not
available offline, so each domain has a generator that mimics its formation
mechanism; DESIGN.md §3 documents the substitution. The helpers below provide
the common ingredients: heavy-tailed popularity weights, overlapping community
assignments, and bounded sampling without replacement.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def zipf_weights(count: int, exponent: float = 1.0) -> np.ndarray:
    """Normalized Zipf-like popularity weights ``(1/rank)^exponent``.

    Heavy-tailed popularity is the common trait of real node-activity
    distributions (author productivity, tag popularity, mailbox traffic).
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def assign_overlapping_communities(
    num_nodes: int,
    num_communities: int,
    mean_memberships: float,
    rng: np.random.Generator,
) -> List[List[int]]:
    """Assign each node to one or more communities; returns members per community.

    Every node belongs to at least one community; additional memberships are
    Poisson-distributed so a fraction of nodes bridge communities, which is
    what creates cross-community hyperedge overlaps.
    """
    if num_communities <= 0:
        raise ValueError("num_communities must be positive")
    if mean_memberships < 1:
        raise ValueError("mean_memberships must be at least 1")
    members: List[List[int]] = [[] for _ in range(num_communities)]
    for node in range(num_nodes):
        primary = int(rng.integers(0, num_communities))
        memberships = {primary}
        extra = int(rng.poisson(mean_memberships - 1))
        for _ in range(extra):
            memberships.add(int(rng.integers(0, num_communities)))
        for community in memberships:
            members[community].append(node)
    # Guarantee no community is empty (re-seed empties with a random node).
    for community, nodes in enumerate(members):
        if not nodes:
            members[community].append(int(rng.integers(0, num_nodes)))
    return members


def weighted_sample_without_replacement(
    population: Sequence[int],
    weights: np.ndarray,
    size: int,
    rng: np.random.Generator,
) -> List[int]:
    """Sample *size* distinct items from *population* proportionally to *weights*.

    Falls back to returning the whole population when ``size`` exceeds it.
    """
    population = list(population)
    if size >= len(population):
        return list(population)
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (len(population),):
        raise ValueError("weights must align with the population")
    total = weights.sum()
    if total <= 0:
        chosen = rng.choice(len(population), size=size, replace=False)
    else:
        chosen = rng.choice(
            len(population), size=size, replace=False, p=weights / total
        )
    return [population[int(index)] for index in chosen]


def unique_edges(edges: Sequence[Sequence[int]]) -> List[List[int]]:
    """Drop exact duplicate hyperedges, keeping the first occurrence of each.

    The paper removes duplicated hyperedges from its datasets before any
    analysis (Table 2), and the MoCHy counters assume distinct hyperedges, so
    every generator deduplicates its output through this helper.
    """
    seen = set()
    result: List[List[int]] = []
    for edge in edges:
        key = frozenset(edge)
        if key not in seen:
            seen.add(key)
            result.append(list(edge))
    return result


def bounded_size(rng: np.random.Generator, mean: float, minimum: int, maximum: int) -> int:
    """Draw a hyperedge size from a shifted Poisson, clamped to ``[minimum, maximum]``."""
    if minimum < 1:
        raise ValueError("minimum hyperedge size must be at least 1")
    if maximum < minimum:
        raise ValueError("maximum must be >= minimum")
    size = minimum + int(rng.poisson(max(mean - minimum, 0.0)))
    return int(min(max(size, minimum), maximum))
