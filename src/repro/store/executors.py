"""Execution backends for the batch-serving driver (:mod:`repro.store.serve`).

A deduplicated batch is a list of independent *units* — one ``(dataset,
spec)`` computation each — and an executor decides how they run:

* :class:`SerialExecutor` — in the calling thread, one after another; the
  reference semantics every other backend must reproduce **bit-identically**
  (for exact and integer-seeded specs).
* :class:`ThreadExecutor` — a thread pool over the server's own engine pool.
  Units on *different* datasets overlap (NumPy kernels release the GIL);
  units on the same dataset serialize on that engine's lock, so engines
  never race on their internal caches.
* :class:`ProcessExecutor` — real CPU parallelism. Following the pattern of
  :mod:`repro.counting.parallel`, workers are shipped **CSR arrays and spec
  dicts, never pickled engines**: the parent resolves each dataset once,
  hands over the hyperedge rows of its canonical CSR view plus the spec's
  plain-dict form, and the worker rebuilds the hypergraph, runs a private
  engine and returns the typed result.

Why the CSR rebuild is safe: every counting path runs on the CSR view, whose
dense node ids come from the hypergraph's deterministic node ordering, and
null-model draws index nodes by sorted position — none of it depends on node
*label values* (which is also why :func:`~repro.store.fingerprint.csr_fingerprint`
ignores them). Rebuilding with dense integer labels therefore reproduces
every exact and integer-seeded result bit-for-bit, and the rebuilt
hypergraph's fingerprint equals the original's — so worker processes persist
artifacts under the *same* store keys. Workers given a persistent store
directory open their own :class:`~repro.store.ArtifactStore` over it; the
store's interprocess write locking makes those concurrent same-directory
writers safe.

Pool lifetime is decoupled from batch dispatch: by default an executor opens
a fresh worker pool per ``map``/``map_stream`` call (one-shot batches pay
nothing between calls), while a long-lived front-end — the HTTP service in
:mod:`repro.store.server` — hands its executors a :class:`WorkerPool`, whose
workers are reused across batches until the pool is closed. ``map`` collects
a whole batch in unit order; ``map_stream`` yields ``(unit index, outcome)``
pairs in *completion* order, which is what lets the service stream results
over the wire while slower units are still running.
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.counting.parallel import (
    BACKEND_PROCESS,
    BACKEND_THREAD,
    make_executor,
)
from repro.exceptions import ServeError, SpecError
from repro.hypergraph.hypergraph import Hypergraph
from repro.obs import metrics as obs_metrics
from repro.obs.trace import current_request_id, log_event, trace
from repro.store import faults
from repro.utils.logging import get_logger

LOGGER = get_logger(__name__)

QUEUE_WAIT_SECONDS = obs_metrics.histogram(
    "repro_executor_queue_wait_seconds",
    "Delay between a unit's submission and the start of its execution "
    "(thread backend; workers share the parent's registry).",
    ("backend",),
)
UNIT_TURNAROUND_SECONDS = obs_metrics.histogram(
    "repro_executor_unit_turnaround_seconds",
    "Submission-to-completion latency of streamed units, observed in the "
    "parent (includes queue wait; the only cross-boundary view for process "
    "workers).",
    ("backend",),
)
RESPAWNS_TOTAL = obs_metrics.counter(
    "repro_executor_respawns_total",
    "Broken worker pools discarded and lazily respawned after a crash.",
    ("backend",),
)

#: Serving backends accepted by ``EngineServer.submit(backend=...)``.
SERVE_BACKEND_SERIAL = "serial"
SERVE_BACKEND_THREAD = BACKEND_THREAD
SERVE_BACKEND_PROCESS = BACKEND_PROCESS
SERVE_BACKENDS = (SERVE_BACKEND_SERIAL, SERVE_BACKEND_THREAD, SERVE_BACKEND_PROCESS)

#: ``UnitFailure.error_type`` of a unit that exceeded its batch deadline.
FAILURE_TIMEOUT = "UnitTimeout"

#: ``UnitFailure.error_type`` of a unit lost to a dead process worker.
FAILURE_WORKER_CRASH = "WorkerCrashed"


@dataclass(frozen=True)
class UnitFailure:
    """Pickle-safe record of one unit's failure, for error-capturing streams.

    When a streaming caller asks for captured errors (the HTTP service must
    keep a batch's other units flowing after one unit fails), a failed unit
    resolves to one of these instead of raising: the exception's class name
    plus its message, both plain strings so the record survives a process
    worker's pickle boundary and serializes straight onto the wire.
    ``retryable`` tells clients machine-readably whether resubmitting the
    same unit can succeed — true for deadline timeouts and worker crashes
    (transient conditions), false for deterministic failures like an unknown
    dataset, which would fail identically on every retry.
    """

    error_type: str
    message: str
    retryable: bool = False

    @classmethod
    def from_exception(cls, error: BaseException) -> "UnitFailure":
        return cls(error_type=type(error).__name__, message=str(error))

    @classmethod
    def timeout(cls, label: str, budget: Optional[float] = None) -> "UnitFailure":
        """The structured record of a unit that exceeded the batch deadline."""
        detail = f" of {budget:.3f}s" if budget is not None else ""
        return cls(
            error_type=FAILURE_TIMEOUT,
            message=f"unit {label or '?'} exceeded the request deadline{detail}",
            retryable=True,
        )

    @classmethod
    def worker_crash(cls, label: str, error: BaseException) -> "UnitFailure":
        """The structured record of a unit lost to a dead process worker."""
        detail = str(error) or type(error).__name__
        return cls(
            error_type=FAILURE_WORKER_CRASH,
            message=(
                f"worker process died while unit {label or '?'} was in "
                f"flight ({detail}); the pool respawns for the next batch"
            ),
            retryable=True,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": self.error_type,
            "message": self.message,
            "retryable": self.retryable,
        }


@dataclass(frozen=True)
class WorkerPayload:
    """Process-shippable form of one serving unit: plain arrays and dicts.

    ``edge_ptr``/``edge_nodes`` are the hyperedge rows of the dataset's
    canonical CSR view (sorted dense node ids — see
    :class:`repro.fastcore.csr.HypergraphCSR`); ``spec`` is the
    :func:`repro.api.spec_to_dict` rendering of the request's spec;
    ``store_dir`` points the worker at the shared persistent store (``None``
    runs the worker store-less, e.g. when the parent store is memory-only
    and therefore unreachable from another process). ``capture`` makes the
    worker resolve failures to :class:`UnitFailure` records instead of
    raising, mirroring the local error-capturing execution path.
    ``request_id`` carries the originating request's trace id across the
    pickle boundary (contextvars do not survive it); the worker re-enters
    :func:`repro.obs.trace.trace` with it so worker-side structured events
    correlate with the parent's. ``kernel_backend`` likewise ships the
    parent's resolved counting-kernel backend (``set_backend`` /
    ``REPRO_KERNEL_BACKEND`` are process state a spawned worker would not
    otherwise see); the worker re-enters it via
    :func:`repro.fastcore.use_backend`, failing loudly if the backend is
    unavailable there.
    """

    edge_ptr: np.ndarray
    edge_nodes: np.ndarray
    dataset: str
    spec: Dict[str, Any]
    store_dir: Optional[str]
    capture: bool = False
    failure: Optional[UnitFailure] = None
    request_id: Optional[str] = None
    kernel_backend: Optional[str] = None

    @classmethod
    def failed(
        cls,
        dataset: str,
        failure: UnitFailure,
        request_id: Optional[str] = None,
    ) -> "WorkerPayload":
        """A payload that resolves to *failure* without running anything.

        Used by error-capturing streams when materializing the real payload
        (resolving the dataset in the parent) already failed: the failure
        rides the normal unit pipeline so its slots still get a record.
        """
        empty = np.zeros(0, dtype=np.int32)
        return cls(
            edge_ptr=empty,
            edge_nodes=empty,
            dataset=dataset,
            spec={},
            store_dir=None,
            capture=True,
            failure=failure,
            request_id=request_id,
        )


@dataclass(frozen=True)
class ServeUnit:
    """One unique computation of a batch, in both executable forms.

    ``run_local`` executes through the server's own engine pool (serial and
    thread backends); ``make_payload`` renders the process-shippable form
    lazily, so the serial/thread paths never pay for it.
    """

    run_local: Callable[[], Any]
    make_payload: Callable[[], WorkerPayload]
    label: str = field(default="")


def hypergraph_from_csr_rows(
    edge_ptr: np.ndarray, edge_nodes: np.ndarray, name: str
) -> Hypergraph:
    """Rebuild a hypergraph from CSR hyperedge rows, canonically labeled.

    The result is content-equivalent to the hypergraph the rows came from:
    same hyperedge order and the **same canonical CSR layout** — hence the
    same fingerprint (so worker processes hit and populate the same store
    entries) and bit-identical counting/profiling results.

    Labels are fixed-width decimal strings of the dense ids (``"007"``),
    not bare ints: ``Hypergraph`` orders nodes by ``(type, repr)``, and only
    the fixed width makes that lexicographic order coincide with the numeric
    order of the shipped ids, keeping the dense-id mapping the identity.
    (Bare ints would sort ``"10" < "2"`` and permute the CSR.)
    """
    edge_ptr = np.asarray(edge_ptr)
    edge_nodes = np.asarray(edge_nodes)
    width = len(str(int(edge_nodes.max()))) if len(edge_nodes) else 1
    edges = [
        [f"{node:0{width}d}" for node in edge_nodes[edge_ptr[i] : edge_ptr[i + 1]]]
        for i in range(len(edge_ptr) - 1)
    ]
    return Hypergraph(edges, name=name)


def ensure_servable_spec(spec) -> None:
    """Reject spec types the serving layer cannot dispatch, eagerly."""
    from repro.api.config import CompareSpec, CountSpec, EvolveSpec, ProfileSpec, VarianceSpec

    if isinstance(spec, EvolveSpec):
        raise SpecError(
            "EvolveSpec is not servable in a batch: evolution chains stream "
            "one record per snapshot — use POST /v1/evolve (or "
            "MotifEngine.evolve) instead"
        )
    if not isinstance(spec, (CountSpec, ProfileSpec, CompareSpec, VarianceSpec)):
        raise SpecError(
            f"spec type {type(spec).__name__} is not servable in a batch; "
            f"the serving layer dispatches CountSpec, ProfileSpec, "
            f"CompareSpec and VarianceSpec"
        )
    if isinstance(spec, CountSpec) and spec.include_instances:
        raise SpecError(
            "include_instances is not servable: the instance enumeration is "
            "an unbounded payload the store never persists — run it on a "
            "local MotifEngine instead"
        )


def dispatch_spec(engine, spec):
    """Run one servable spec on *engine*, returning the typed result.

    The single dispatch point shared by every execution path — the server's
    local (serial/thread) execution and the process workers — so backends
    cannot drift in what they serve.
    """
    from repro.api.config import CountSpec, ProfileSpec, VarianceSpec

    ensure_servable_spec(spec)
    # Chaos hook shared by every backend: an armed "serve.unit" fault can
    # delay (slow unit) or fail this unit, keyed on dataset and spec type.
    faults.fire(
        "serve.unit",
        key=f"{getattr(engine.hypergraph, 'name', '?')}:{type(spec).__name__}",
    )
    if isinstance(spec, CountSpec):
        return engine.count(spec)
    if isinstance(spec, ProfileSpec):
        return engine.profile(spec)
    if isinstance(spec, VarianceSpec):
        return engine.variance(spec)
    return engine.compare(spec)


def execute_payload(payload: WorkerPayload):
    """Run one serving unit from its shipped form (the process-worker entry).

    Module-level so it pickles by reference. Builds a private engine over the
    rebuilt hypergraph — consulting and populating the shared persistent
    store when one is configured — and returns the typed result.
    """
    # Imported here (not at module top) to keep this module importable from
    # repro.store without dragging the API layer into every store user; the
    # worker process pays the import once.
    from repro.api.config import spec_from_dict
    from repro.api.engine import MotifEngine
    from repro.fastcore.backend import use_backend
    from repro.store.artifacts import ArtifactStore

    if payload.failure is not None:
        return payload.failure
    # Re-enter the originating request's trace context: contextvars did not
    # survive the pickle boundary, but the id rode along on the payload.
    with trace(payload.request_id):
        # Chaos hook on the worker side of the pickle boundary: a
        # "crash"-mode fault here kills this worker process outright
        # (os._exit), which is how the chaos suite proves a dead worker
        # cannot wedge a stream. Armed via the REPRO_FAULTS environment
        # variable, which workers inherit.
        faults.fire("worker.unit", key=payload.dataset)
        started = time.perf_counter()
        try:
            hypergraph = hypergraph_from_csr_rows(
                payload.edge_ptr, payload.edge_nodes, payload.dataset
            )
            store = ArtifactStore(payload.store_dir) if payload.store_dir else False
            engine = MotifEngine(hypergraph, store=store)
            with use_backend(payload.kernel_backend):
                result = dispatch_spec(engine, spec_from_dict(payload.spec))
        except Exception as error:
            log_event(
                LOGGER,
                "worker.unit_failed",
                dataset=payload.dataset,
                error_type=type(error).__name__,
                seconds=round(time.perf_counter() - started, 6),
            )
            if payload.capture:
                return UnitFailure.from_exception(error)
            raise
        log_event(
            LOGGER,
            "worker.unit_done",
            dataset=payload.dataset,
            spec_type=str(payload.spec.get("type", "?")),
            seconds=round(time.perf_counter() - started, 6),
        )
        return result


class WorkerPool:
    """A long-lived worker pool, decoupled from any one batch's dispatch.

    Executors without a pool open a fresh ``concurrent.futures`` pool per
    batch and tear it down afterwards — correct, but a continuously-serving
    front-end would pay thread/process startup on every request. A
    ``WorkerPool`` owns the underlying pool instead: it is opened lazily on
    first use, **reused across batches**, and shut down once by
    :meth:`close` (or the context manager). The backend — ``"thread"`` or
    ``"process"`` — is fixed at construction, which is how the HTTP service
    chooses its execution mode at startup.
    """

    def __init__(self, backend: str, workers: int) -> None:
        if backend not in (SERVE_BACKEND_THREAD, SERVE_BACKEND_PROCESS):
            raise SpecError(
                f"a worker pool runs a {SERVE_BACKEND_THREAD!r} or "
                f"{SERVE_BACKEND_PROCESS!r} backend, got {backend!r} "
                f"(serial execution needs no pool)"
            )
        if isinstance(workers, bool) or not isinstance(workers, int) or workers <= 0:
            raise SpecError(f"workers must be a positive integer, got {workers!r}")
        self.backend = backend
        self.workers = workers
        self._executor = None
        self._closed = False
        self._respawns = 0
        self._lock = threading.Lock()

    @property
    def started(self) -> bool:
        """Whether the underlying pool has been opened (first use does it)."""
        return self._executor is not None

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called; a closed pool stays closed."""
        return self._closed

    @property
    def respawns(self) -> int:
        """How many times a broken pool was discarded and lazily respawned."""
        return self._respawns

    def reset(self, executor=None) -> bool:
        """Discard the underlying pool so the next batch respawns workers.

        This is the crash-recovery path: when a process worker dies, the
        whole ``concurrent.futures`` pool is broken — every pending future
        fails — and it can never execute again. Callers that observe the
        breakage hand the broken executor here; it is swapped out (the next
        :meth:`executor` call lazily opens a fresh pool) and shut down
        without waiting. Passing the *executor* the caller saw makes the
        reset idempotent under concurrent batches: only the first reporter
        swaps, later reports of the same corpse are no-ops, and a fresh pool
        another batch already opened is never torn down by a stale report.
        Returns whether this call performed the swap.
        """
        with self._lock:
            if self._closed or self._executor is None:
                return False
            if executor is not None and executor is not self._executor:
                return False
            broken, self._executor = self._executor, None
            self._respawns += 1
        broken.shutdown(wait=False)
        RESPAWNS_TOTAL.inc(backend=self.backend)
        log_event(
            LOGGER,
            "executor.pool_respawn",
            level=logging.WARNING,
            backend=self.backend,
            respawns=self._respawns,
        )
        return True

    def executor(self):
        """The shared ``concurrent.futures`` executor, opened on first use."""
        with self._lock:
            if self._closed:
                raise SpecError("worker pool is closed")
            if self._executor is None:
                self._executor = make_executor(self.backend, self.workers)
            return self._executor

    def serve_executor(self) -> "ServeExecutor":
        """A serving executor dispatching batches onto this pool's workers."""
        if self.backend == SERVE_BACKEND_PROCESS:
            return ProcessExecutor(self.workers, pool=self)
        return ThreadExecutor(self.workers, pool=self)

    def close(self, wait: bool = True) -> None:
        """Shut the workers down; idempotent, and permanent for this pool."""
        with self._lock:
            executor, self._executor = self._executor, None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("open" if self.started else "idle")
        return f"WorkerPool(backend={self.backend!r}, workers={self.workers}, {state})"

    def as_dict(self) -> Dict[str, Any]:
        """Plain mapping describing the pool (for the service's ``/v1/stats``)."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "started": self.started,
            "closed": self.closed,
            "respawns": self.respawns,
        }


class ServeExecutor:
    """How a deduplicated batch of :class:`ServeUnit` runs; see the backends."""

    name: str

    def map(self, units: Sequence[ServeUnit]) -> List[Any]:
        """Execute every unit, returning results in unit order."""
        raise NotImplementedError

    def map_stream(
        self, units: Sequence[ServeUnit], deadline: Optional[float] = None
    ) -> Iterator[Tuple[int, Any]]:
        """Yield ``(unit index, outcome)`` pairs as units complete.

        Completion order, not unit order — the streaming front-ends forward
        each outcome the moment it exists and label it with its index.

        *deadline* is an absolute ``time.monotonic()`` instant: once it
        passes, units that have not finished resolve to structured
        :meth:`UnitFailure.timeout` records instead of blocking the stream.
        Units already mid-execution cannot be preempted (threads are not
        killable); they are abandoned to finish in the background while
        their slots get the timeout record — the stream itself never hangs.
        """
        raise NotImplementedError


class SerialExecutor(ServeExecutor):
    """Reference backend: units run in the calling thread, in order."""

    name = SERVE_BACKEND_SERIAL

    def map(self, units: Sequence[ServeUnit]) -> List[Any]:
        return [unit.run_local() for unit in units]

    def map_stream(
        self, units: Sequence[ServeUnit], deadline: Optional[float] = None
    ) -> Iterator[Tuple[int, Any]]:
        # Serial execution cannot preempt a running unit; the deadline is
        # honored between units, so one slow unit cannot drag the whole
        # remainder of the batch past the budget.
        for index, unit in enumerate(units):
            if deadline is not None and time.monotonic() >= deadline:
                yield index, UnitFailure.timeout(unit.label)
            else:
                yield index, unit.run_local()


class _PoolExecutor(ServeExecutor):
    """Shared fan-out/collect loop of the thread and process backends.

    Subclasses provide ``_prepare`` (turn units into the items the backend
    executes — identity for threads, payload materialization for processes)
    plus the per-item inline/submitted execution. With a persistent
    :class:`WorkerPool` the batch dispatches onto the pool's long-lived
    workers; without one, a fresh pool is opened per batch (and a
    single-worker batch simply runs inline).
    """

    def __init__(self, num_workers: int, pool: Optional[WorkerPool] = None) -> None:
        self._num_workers = int(num_workers)
        self._pool = pool

    def _prepare(self, units: Sequence[ServeUnit]) -> Sequence[Any]:
        return units

    def _run_inline(self, item):
        raise NotImplementedError

    def _submit(self, executor, item):
        raise NotImplementedError

    @contextmanager
    def _lease(self, num_items: int):
        """Yield the executor running this batch (``None`` → run inline).

        A persistent pool is borrowed and *not* shut down afterwards — its
        lifetime belongs to :class:`WorkerPool`; an ephemeral pool lives
        exactly as long as the batch.
        """
        if self._pool is not None:
            yield self._pool.executor()
            return
        workers = min(self._num_workers, num_items)
        if workers == 1:
            yield None
            return
        executor = make_executor(self.name, workers)
        try:
            yield executor
        finally:
            # Non-blocking: a fully-collected batch has nothing left to wait
            # for, and a deadline-expired one must not block here on workers
            # still grinding through abandoned units.
            executor.shutdown(wait=False)

    def _recover(self, executor) -> None:
        """React to a broken executor: make the persistent pool respawn.

        An ephemeral pool needs nothing — its lease shuts it down — but a
        persistent :class:`WorkerPool` would stay poisoned forever, failing
        every future batch, unless the corpse is swapped out here.
        """
        if self._pool is not None:
            self._pool.reset(executor)

    def map(self, units: Sequence[ServeUnit]) -> List[Any]:
        if not units:
            return []
        items = self._prepare(units)
        with self._lease(len(items)) as executor:
            if executor is None:
                return [self._run_inline(item) for item in items]
            try:
                submitted = time.monotonic()
                futures = [self._submit(executor, item) for item in items]
                # Collect in submission order: request ordering is part of
                # the serving contract regardless of which worker finished
                # first.
                results = []
                for future in futures:
                    results.append(future.result())
                    UNIT_TURNAROUND_SECONDS.observe(
                        time.monotonic() - submitted, backend=self.name
                    )
                return results
            except BrokenExecutor as error:
                self._recover(executor)
                raise ServeError(
                    f"a {self.name} worker died mid-batch "
                    f"({str(error) or type(error).__name__}); the batch was "
                    f"lost but the pool respawns for the next one"
                ) from error

    def map_stream(
        self, units: Sequence[ServeUnit], deadline: Optional[float] = None
    ) -> Iterator[Tuple[int, Any]]:
        if not units:
            return
        items = self._prepare(units)
        labels = [unit.label for unit in units]
        with self._lease(len(items)) as executor:
            if executor is None:
                for index, item in enumerate(items):
                    if deadline is not None and time.monotonic() >= deadline:
                        yield index, UnitFailure.timeout(labels[index])
                    else:
                        yield index, self._run_inline(item)
                return
            pending: Dict[Any, int] = {}
            submitted: Dict[int, float] = {}
            try:
                for index, item in enumerate(items):
                    submitted[index] = time.monotonic()
                    pending[self._submit(executor, item)] = index
            except BrokenExecutor as error:
                # The pool was already broken (a worker died idle, after a
                # previous batch): the units never submitted become crash
                # records below, alongside whatever did get submitted.
                self._recover(executor)
                for index in range(len(pending), len(items)):
                    yield index, UnitFailure.worker_crash(labels[index], error)
            while pending:
                budget = None if deadline is None else deadline - time.monotonic()
                if budget is not None and budget <= 0:
                    done = set()
                else:
                    done, _ = wait(
                        set(pending), timeout=budget, return_when=FIRST_COMPLETED
                    )
                if not done:
                    # Deadline expired: cancel what never started, abandon
                    # what did (threads cannot be killed), and resolve every
                    # unfinished slot to a structured timeout record.
                    for future, index in sorted(
                        pending.items(), key=lambda entry: entry[1]
                    ):
                        future.cancel()
                        yield index, UnitFailure.timeout(labels[index])
                    return
                for future in done:
                    index = pending.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenExecutor as error:
                        # A worker died with units in flight. The broken pool
                        # fails *all* pending futures; convert every lost
                        # unit to a crash record, respawn the pool for the
                        # next batch, and keep the stream flowing — a crashed
                        # worker must never wedge a stream or poison the
                        # pool.
                        self._recover(executor)
                        yield index, UnitFailure.worker_crash(labels[index], error)
                        for other, other_index in sorted(
                            pending.items(), key=lambda entry: entry[1]
                        ):
                            other.cancel()
                            yield (
                                other_index,
                                UnitFailure.worker_crash(labels[other_index], error),
                            )
                        pending.clear()
                        break
                    UNIT_TURNAROUND_SECONDS.observe(
                        time.monotonic() - submitted[index], backend=self.name
                    )
                    yield index, outcome


class ThreadExecutor(_PoolExecutor):
    """Thread pool over the server's engine pool (shared-memory serving)."""

    name = SERVE_BACKEND_THREAD

    def _run_inline(self, item: ServeUnit):
        return item.run_local()

    def _submit(self, executor, item: ServeUnit):
        # Pool threads inherit neither the submitter's contextvars nor its
        # clock: capture the request id and the enqueue instant here, then
        # re-bind/observe when a worker thread actually picks the unit up.
        request_id = current_request_id()
        enqueued = time.monotonic()

        def run():
            QUEUE_WAIT_SECONDS.observe(
                time.monotonic() - enqueued, backend=SERVE_BACKEND_THREAD
            )
            with trace(request_id):
                return item.run_local()

        return executor.submit(run)


class ProcessExecutor(_PoolExecutor):
    """Process pool; workers receive :class:`WorkerPayload`, never engines.

    Uses the platform's default start method (like the parallel counters in
    :mod:`repro.counting.parallel`): ``fork`` on Linux up to Python 3.13,
    ``forkserver`` from 3.14. Under ``fork``, prefer submitting
    process-backend batches from a thread-quiet process — combining them
    with *overlapping* ``submit_async`` batches forks while dispatcher
    threads run, which CPython 3.12+ warns about. (``spawn``/``forkserver``
    are not forced here: they re-import ``__main__`` in every worker, which
    breaks stdin/REPL-driven parents and pays per-worker import time.)
    """

    name = SERVE_BACKEND_PROCESS

    def _prepare(self, units: Sequence[ServeUnit]) -> Sequence[WorkerPayload]:
        # Materialize payloads in the parent *before* opening the pool: this
        # resolves datasets through the parent's engine pool exactly once
        # and surfaces load errors eagerly rather than from a worker.
        return [unit.make_payload() for unit in units]

    def _run_inline(self, item: WorkerPayload):
        return execute_payload(item)

    def _submit(self, executor, item: WorkerPayload):
        return executor.submit(execute_payload, item)


def resolve_serve_executor(backend: Optional[str], workers: int) -> ServeExecutor:
    """Normalize ``(backend, workers)`` into an ephemeral executor instance.

    ``backend=None`` picks ``"serial"`` for one worker and ``"thread"`` for
    several; unknown backends and non-positive worker counts raise
    :class:`SpecError` before any work runs. (Persistent-pool execution is
    resolved through :meth:`WorkerPool.serve_executor` instead, so an
    explicit ``workers`` count here is always honored exactly.)
    """
    if isinstance(workers, bool) or not isinstance(workers, int) or workers <= 0:
        raise SpecError(f"workers must be a positive integer, got {workers!r}")
    if backend is None:
        backend = SERVE_BACKEND_SERIAL if workers == 1 else SERVE_BACKEND_THREAD
    if backend == SERVE_BACKEND_SERIAL:
        return SerialExecutor()
    if backend == SERVE_BACKEND_THREAD:
        return ThreadExecutor(workers)
    if backend == SERVE_BACKEND_PROCESS:
        return ProcessExecutor(workers)
    raise SpecError(
        f"backend must be one of {SERVE_BACKENDS} (or None to choose "
        f"automatically), got {backend!r}"
    )
