"""Execution backends for the batch-serving driver (:mod:`repro.store.serve`).

A deduplicated batch is a list of independent *units* — one ``(dataset,
spec)`` computation each — and an executor decides how they run:

* :class:`SerialExecutor` — in the calling thread, one after another; the
  reference semantics every other backend must reproduce **bit-identically**
  (for exact and integer-seeded specs).
* :class:`ThreadExecutor` — a thread pool over the server's own engine pool.
  Units on *different* datasets overlap (NumPy kernels release the GIL);
  units on the same dataset serialize on that engine's lock, so engines
  never race on their internal caches.
* :class:`ProcessExecutor` — real CPU parallelism. Following the pattern of
  :mod:`repro.counting.parallel`, workers are shipped **CSR arrays and spec
  dicts, never pickled engines**: the parent resolves each dataset once,
  hands over the hyperedge rows of its canonical CSR view plus the spec's
  plain-dict form, and the worker rebuilds the hypergraph, runs a private
  engine and returns the typed result.

Why the CSR rebuild is safe: every counting path runs on the CSR view, whose
dense node ids come from the hypergraph's deterministic node ordering, and
null-model draws index nodes by sorted position — none of it depends on node
*label values* (which is also why :func:`~repro.store.fingerprint.csr_fingerprint`
ignores them). Rebuilding with dense integer labels therefore reproduces
every exact and integer-seeded result bit-for-bit, and the rebuilt
hypergraph's fingerprint equals the original's — so worker processes persist
artifacts under the *same* store keys. Workers given a persistent store
directory open their own :class:`~repro.store.ArtifactStore` over it; the
store's interprocess write locking makes those concurrent same-directory
writers safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.counting.parallel import (
    BACKEND_PROCESS,
    BACKEND_THREAD,
    make_executor,
)
from repro.exceptions import SpecError
from repro.hypergraph.hypergraph import Hypergraph

#: Serving backends accepted by ``EngineServer.submit(backend=...)``.
SERVE_BACKEND_SERIAL = "serial"
SERVE_BACKEND_THREAD = BACKEND_THREAD
SERVE_BACKEND_PROCESS = BACKEND_PROCESS
SERVE_BACKENDS = (SERVE_BACKEND_SERIAL, SERVE_BACKEND_THREAD, SERVE_BACKEND_PROCESS)


@dataclass(frozen=True)
class WorkerPayload:
    """Process-shippable form of one serving unit: plain arrays and dicts.

    ``edge_ptr``/``edge_nodes`` are the hyperedge rows of the dataset's
    canonical CSR view (sorted dense node ids — see
    :class:`repro.fastcore.csr.HypergraphCSR`); ``spec`` is the
    :func:`repro.api.spec_to_dict` rendering of the request's spec;
    ``store_dir`` points the worker at the shared persistent store (``None``
    runs the worker store-less, e.g. when the parent store is memory-only
    and therefore unreachable from another process).
    """

    edge_ptr: np.ndarray
    edge_nodes: np.ndarray
    dataset: str
    spec: Dict[str, Any]
    store_dir: Optional[str]


@dataclass(frozen=True)
class ServeUnit:
    """One unique computation of a batch, in both executable forms.

    ``run_local`` executes through the server's own engine pool (serial and
    thread backends); ``make_payload`` renders the process-shippable form
    lazily, so the serial/thread paths never pay for it.
    """

    run_local: Callable[[], Any]
    make_payload: Callable[[], WorkerPayload]
    label: str = field(default="")


def hypergraph_from_csr_rows(
    edge_ptr: np.ndarray, edge_nodes: np.ndarray, name: str
) -> Hypergraph:
    """Rebuild a hypergraph from CSR hyperedge rows, canonically labeled.

    The result is content-equivalent to the hypergraph the rows came from:
    same hyperedge order and the **same canonical CSR layout** — hence the
    same fingerprint (so worker processes hit and populate the same store
    entries) and bit-identical counting/profiling results.

    Labels are fixed-width decimal strings of the dense ids (``"007"``),
    not bare ints: ``Hypergraph`` orders nodes by ``(type, repr)``, and only
    the fixed width makes that lexicographic order coincide with the numeric
    order of the shipped ids, keeping the dense-id mapping the identity.
    (Bare ints would sort ``"10" < "2"`` and permute the CSR.)
    """
    edge_ptr = np.asarray(edge_ptr)
    edge_nodes = np.asarray(edge_nodes)
    width = len(str(int(edge_nodes.max()))) if len(edge_nodes) else 1
    edges = [
        [f"{node:0{width}d}" for node in edge_nodes[edge_ptr[i] : edge_ptr[i + 1]]]
        for i in range(len(edge_ptr) - 1)
    ]
    return Hypergraph(edges, name=name)


def ensure_servable_spec(spec) -> None:
    """Reject spec types the serving layer cannot dispatch, eagerly."""
    from repro.api.config import CompareSpec, CountSpec, ProfileSpec

    if not isinstance(spec, (CountSpec, ProfileSpec, CompareSpec)):
        raise SpecError(
            f"the serving layer dispatches CountSpec, ProfileSpec and "
            f"CompareSpec, got {type(spec).__name__}"
        )


def dispatch_spec(engine, spec):
    """Run one servable spec on *engine*, returning the typed result.

    The single dispatch point shared by every execution path — the server's
    local (serial/thread) execution and the process workers — so backends
    cannot drift in what they serve.
    """
    from repro.api.config import CountSpec, ProfileSpec

    ensure_servable_spec(spec)
    if isinstance(spec, CountSpec):
        return engine.count(spec)
    if isinstance(spec, ProfileSpec):
        return engine.profile(spec)
    return engine.compare(spec)


def execute_payload(payload: WorkerPayload):
    """Run one serving unit from its shipped form (the process-worker entry).

    Module-level so it pickles by reference. Builds a private engine over the
    rebuilt hypergraph — consulting and populating the shared persistent
    store when one is configured — and returns the typed result.
    """
    # Imported here (not at module top) to keep this module importable from
    # repro.store without dragging the API layer into every store user; the
    # worker process pays the import once.
    from repro.api.config import spec_from_dict
    from repro.api.engine import MotifEngine
    from repro.store.artifacts import ArtifactStore

    hypergraph = hypergraph_from_csr_rows(
        payload.edge_ptr, payload.edge_nodes, payload.dataset
    )
    store = ArtifactStore(payload.store_dir) if payload.store_dir else False
    engine = MotifEngine(hypergraph, store=store)
    return dispatch_spec(engine, spec_from_dict(payload.spec))


class ServeExecutor:
    """How a deduplicated batch of :class:`ServeUnit` runs; see the backends."""

    name: str

    def map(self, units: Sequence[ServeUnit]) -> List[Any]:
        """Execute every unit, returning results in unit order."""
        raise NotImplementedError


class SerialExecutor(ServeExecutor):
    """Reference backend: units run in the calling thread, in order."""

    name = SERVE_BACKEND_SERIAL

    def map(self, units: Sequence[ServeUnit]) -> List[Any]:
        return [unit.run_local() for unit in units]


class _PoolExecutor(ServeExecutor):
    """Shared fan-out/collect loop of the thread and process backends.

    Subclasses provide ``_prepare`` (turn units into the items the backend
    executes — identity for threads, payload materialization for processes)
    plus the per-item inline/submitted execution.
    """

    def __init__(self, num_workers: int) -> None:
        self._num_workers = int(num_workers)

    def _prepare(self, units: Sequence[ServeUnit]) -> Sequence[Any]:
        return units

    def _run_inline(self, item):
        raise NotImplementedError

    def _submit(self, executor, item):
        raise NotImplementedError

    def map(self, units: Sequence[ServeUnit]) -> List[Any]:
        if not units:
            return []
        items = self._prepare(units)
        workers = min(self._num_workers, len(items))
        if workers == 1:
            return [self._run_inline(item) for item in items]
        with make_executor(self.name, workers) as executor:
            futures = [self._submit(executor, item) for item in items]
            # Collect in submission order: request ordering is part of the
            # serving contract regardless of which worker finished first.
            return [future.result() for future in futures]


class ThreadExecutor(_PoolExecutor):
    """Thread pool over the server's engine pool (shared-memory serving)."""

    name = SERVE_BACKEND_THREAD

    def _run_inline(self, item: ServeUnit):
        return item.run_local()

    def _submit(self, executor, item: ServeUnit):
        return executor.submit(item.run_local)


class ProcessExecutor(_PoolExecutor):
    """Process pool; workers receive :class:`WorkerPayload`, never engines.

    Uses the platform's default start method (like the parallel counters in
    :mod:`repro.counting.parallel`): ``fork`` on Linux up to Python 3.13,
    ``forkserver`` from 3.14. Under ``fork``, prefer submitting
    process-backend batches from a thread-quiet process — combining them
    with *overlapping* ``submit_async`` batches forks while dispatcher
    threads run, which CPython 3.12+ warns about. (``spawn``/``forkserver``
    are not forced here: they re-import ``__main__`` in every worker, which
    breaks stdin/REPL-driven parents and pays per-worker import time.)
    """

    name = SERVE_BACKEND_PROCESS

    def _prepare(self, units: Sequence[ServeUnit]) -> Sequence[WorkerPayload]:
        # Materialize payloads in the parent *before* opening the pool: this
        # resolves datasets through the parent's engine pool exactly once
        # and surfaces load errors eagerly rather than from a worker.
        return [unit.make_payload() for unit in units]

    def _run_inline(self, item: WorkerPayload):
        return execute_payload(item)

    def _submit(self, executor, item: WorkerPayload):
        return executor.submit(execute_payload, item)


def resolve_serve_executor(backend: Optional[str], workers: int) -> ServeExecutor:
    """Normalize ``(backend, workers)`` into an executor instance.

    ``backend=None`` picks ``"serial"`` for one worker and ``"thread"`` for
    several; unknown backends and non-positive worker counts raise
    :class:`SpecError` before any work runs.
    """
    if isinstance(workers, bool) or not isinstance(workers, int) or workers <= 0:
        raise SpecError(f"workers must be a positive integer, got {workers!r}")
    if backend is None:
        backend = SERVE_BACKEND_SERIAL if workers == 1 else SERVE_BACKEND_THREAD
    if backend == SERVE_BACKEND_SERIAL:
        return SerialExecutor()
    if backend == SERVE_BACKEND_THREAD:
        return ThreadExecutor(workers)
    if backend == SERVE_BACKEND_PROCESS:
        return ProcessExecutor(workers)
    raise SpecError(
        f"backend must be one of {SERVE_BACKENDS} (or None to choose "
        f"automatically), got {backend!r}"
    )
