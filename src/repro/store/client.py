"""Minimal stdlib client for the motif service (:mod:`repro.store.server`).

Used by the tests, the CI service-smoke job and the examples; scripting
against the service from Python should not require a third-party HTTP
library any more than serving does. One :class:`ServiceClient` opens a
fresh connection per call (the service closes connections after each
response), parses the NDJSON stream incrementally, and raises
:class:`ServiceError` — carrying the HTTP status and the structured error
payload — for every non-2xx response.

>>> from repro.api import CountSpec
>>> from repro.store.client import ServiceClient
>>> client = ServiceClient(port=8723)
>>> client.health()["status"]                               # doctest: +SKIP
'ok'
>>> for record in client.batch_stream(
...     [{"source": "email-enron-like", "spec": {"type": "count"}}]
... ):                                                      # doctest: +SKIP
...     print(record["status"])
"""

from __future__ import annotations

import http.client
import json
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.api.config import spec_to_dict
from repro.exceptions import ReproError
from repro.store.serve import ServeRequest

#: Accepted request shapes: a wire record, a ServeRequest, or (source, spec).
RequestLike = Union[Dict[str, Any], ServeRequest, tuple]


class ServiceError(ReproError):
    """A non-2xx service response (or a streamed per-request error record).

    ``status`` is the HTTP status (``None`` for an in-stream error record,
    which arrives after the 200 header); ``payload`` is the structured
    ``{"type": ..., "message": ...}`` error body when the service sent one.
    """

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


def request_to_dict(request: RequestLike) -> Dict[str, Any]:
    """Render one request into its wire record.

    Accepts a ready-made record (passed through untouched, so tests can send
    deliberately-malformed ones), a :class:`ServeRequest`, or a plain
    ``(source, spec)`` tuple. Sources must be dataset names or file paths —
    in-memory hypergraphs cannot travel over the wire.
    """
    if isinstance(request, dict):
        return request
    if isinstance(request, ServeRequest):
        source, spec = request.source, request.spec
    elif isinstance(request, tuple) and len(request) == 2:
        source, spec = request
    else:
        raise ReproError(
            f"cannot serialize request {request!r}; pass a dict record, a "
            f"ServeRequest or a (source, spec) tuple"
        )
    if not isinstance(source, (str, Path)):
        raise ReproError(
            f"only named/path sources travel over the wire, got "
            f"{type(source).__name__}"
        )
    return {"source": str(source), "spec": spec_to_dict(spec)}


class ServiceClient:
    """Talks to one motif service instance over HTTP."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8723,
        timeout: float = 300.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    # ------------------------------------------------------------------- plumbing
    def _connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _get_json(self, path: str) -> Dict[str, Any]:
        connection = self._connection()
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            body = response.read()
            payload = self._parse_json(body, response.status)
            if response.status != 200:
                raise self._error_from(response.status, payload)
            return payload
        finally:
            connection.close()

    @staticmethod
    def _parse_json(body: bytes, status: int) -> Dict[str, Any]:
        try:
            return json.loads(body)
        except ValueError as error:
            raise ServiceError(
                f"service sent invalid JSON (HTTP {status}): {error}", status=status
            ) from error

    @staticmethod
    def _error_from(status: int, payload: Dict[str, Any]) -> ServiceError:
        detail = payload.get("error", {}) if isinstance(payload, dict) else {}
        message = detail.get("message", f"service returned HTTP {status}")
        return ServiceError(message, status=status, payload=detail)

    # ------------------------------------------------------------------ endpoints
    def health(self) -> Dict[str, Any]:
        """``GET /v1/health``."""
        return self._get_json("/v1/health")

    def stats(self) -> Dict[str, Any]:
        """``GET /v1/stats``."""
        return self._get_json("/v1/stats")

    def wait_until_healthy(
        self, timeout: float = 10.0, interval: float = 0.05
    ) -> Dict[str, Any]:
        """Poll ``/v1/health`` until the service answers; raise on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except (OSError, ServiceError):
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        f"service at {self.host}:{self.port} did not become "
                        f"healthy within {timeout:.1f}s"
                    ) from None
                time.sleep(interval)

    def batch_stream(
        self, requests: List[RequestLike]
    ) -> Iterator[Dict[str, Any]]:
        """``POST /v1/batch``, yielding each NDJSON record as it arrives.

        Records come back in completion order (see the service docs): one
        ``ok``/``error`` record per request plus the trailing ``done``
        summary. Non-2xx responses raise :class:`ServiceError` before
        anything is yielded.
        """
        body = json.dumps(
            {"requests": [request_to_dict(request) for request in requests]}
        ).encode("utf-8")
        connection = self._connection()
        try:
            connection.request(
                "POST",
                "/v1/batch",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            if response.status != 200:
                payload = self._parse_json(response.read(), response.status)
                raise self._error_from(response.status, payload)
            for line in response:
                line = line.strip()
                if not line:
                    continue
                yield json.loads(line)
        finally:
            connection.close()

    def batch(self, requests: List[RequestLike]) -> List[Dict[str, Any]]:
        """``POST /v1/batch``, collecting result dicts in **request order**.

        The streaming inverse of :meth:`batch_stream` for callers that just
        want the answers: waits for the whole stream, checks the ``done``
        summary arrived (a missing summary means the stream was truncated),
        and raises :class:`ServiceError` on the first per-request error
        record.
        """
        results: Dict[int, Dict[str, Any]] = {}
        done: Optional[Dict[str, Any]] = None
        for record in self.batch_stream(requests):
            status = record.get("status")
            if status == "ok":
                results[record["index"]] = record["result"]
            elif status == "error":
                detail = record.get("error", {})
                raise ServiceError(
                    f"request {record.get('index')} failed: "
                    f"{detail.get('message', 'unknown error')}",
                    payload=detail,
                )
            elif status == "aborted":
                detail = record.get("error", {})
                raise ServiceError(
                    f"batch aborted by the service: "
                    f"{detail.get('message', 'unknown error')}",
                    payload=detail,
                )
            elif status == "done":
                done = record
        if done is None:
            raise ServiceError("result stream ended without a 'done' summary")
        if len(results) != len(requests):
            raise ServiceError(
                f"stream delivered {len(results)} results for "
                f"{len(requests)} requests"
            )
        return [results[index] for index in range(len(requests))]

    def __repr__(self) -> str:
        return f"ServiceClient(http://{self.host}:{self.port})"
