"""Minimal stdlib client for the motif service (:mod:`repro.store.server`).

Used by the tests, the CI service-smoke job and the examples; scripting
against the service from Python should not require a third-party HTTP
library any more than serving does. One :class:`ServiceClient` keeps a
**persistent keep-alive connection** (reopened transparently when the
service or a fault closes it), parses the NDJSON stream incrementally, and
raises :class:`ServiceError` — carrying the HTTP status and the structured
error payload — for every non-2xx response.

Fault tolerance: requests are **retried with exponential backoff and
jitter**, but only when retrying is known to be safe and useful —
connection-level failures before a response arrives (connection refused or
reset, the server hanging up without a status line) and the two transient
statuses ``429 Too Many Requests`` / ``503 Service Unavailable``, honoring
any ``Retry-After`` hint the service sends. Deterministic rejections (a
malformed batch is malformed forever) raise immediately, and a connection
dying *mid-stream* is never retried — records were already delivered, and
replaying the batch could double-yield them. Every retry schedule runs
under a hard overall deadline (``retry_deadline``), so a dead service
produces a prompt error instead of an unbounded backoff loop.

>>> from repro.api import CountSpec
>>> from repro.store.client import ServiceClient
>>> client = ServiceClient(port=8723)
>>> client.health()["status"]                               # doctest: +SKIP
'ok'
>>> for record in client.batch_stream(
...     [{"source": "email-enron-like", "spec": {"type": "count"}}]
... ):                                                      # doctest: +SKIP
...     print(record["status"])
"""

from __future__ import annotations

import http.client
import json
import random
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.api.config import spec_to_dict
from repro.exceptions import ReproError
from repro.obs.trace import REQUEST_ID_HEADER, current_request_id, new_request_id
from repro.store.serve import ServeRequest

#: Accepted request shapes: a wire record, a ServeRequest, or (source, spec).
RequestLike = Union[Dict[str, Any], ServeRequest, tuple]

#: HTTP statuses that signal a transient condition worth retrying.
RETRYABLE_STATUSES = (429, 503)

#: Connection-level failures that happen *before* any response bytes arrive,
#: so retrying cannot duplicate delivered work. ``RemoteDisconnected``
#: subclasses both ``BadStatusLine`` and ``ConnectionResetError``;
#: ``CannotSendRequest`` means a stale keep-alive connection whose previous
#: response was cut short — reopening and retrying is the only cure.
RETRYABLE_EXCEPTIONS = (
    ConnectionError,
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
)

#: Retry schedule defaults: attempts after the first, base backoff, cap and
#: the hard overall budget for one logical call including every retry sleep.
DEFAULT_RETRIES = 4
DEFAULT_BACKOFF_SECONDS = 0.1
DEFAULT_BACKOFF_CAP_SECONDS = 2.0
DEFAULT_RETRY_DEADLINE_SECONDS = 60.0


class ServiceError(ReproError):
    """A non-2xx service response (or a streamed per-request error record).

    ``status`` is the HTTP status (``None`` for an in-stream error record,
    which arrives after the 200 header); ``payload`` is the structured
    ``{"type": ..., "message": ..., "retryable": ...}`` error body when the
    service sent one; ``retryable`` mirrors the body's machine-readable
    flag (defaulting from the status for bodiless failures).
    """

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}
        retryable = self.payload.get("retryable")
        if not isinstance(retryable, bool):
            retryable = status in RETRYABLE_STATUSES
        self.retryable = retryable


def request_to_dict(request: RequestLike) -> Dict[str, Any]:
    """Render one request into its wire record.

    Accepts a ready-made record (passed through untouched, so tests can send
    deliberately-malformed ones), a :class:`ServeRequest`, or a plain
    ``(source, spec)`` tuple. Sources must be dataset names or file paths —
    in-memory hypergraphs cannot travel over the wire.
    """
    if isinstance(request, dict):
        return request
    if isinstance(request, ServeRequest):
        source, spec = request.source, request.spec
    elif isinstance(request, tuple) and len(request) == 2:
        source, spec = request
    else:
        raise ReproError(
            f"cannot serialize request {request!r}; pass a dict record, a "
            f"ServeRequest or a (source, spec) tuple"
        )
    if not isinstance(source, (str, Path)):
        raise ReproError(
            f"only named/path sources travel over the wire, got "
            f"{type(source).__name__}"
        )
    return {"source": str(source), "spec": spec_to_dict(spec)}


class ClientStats:
    """Counters over one :class:`ServiceClient`'s lifetime."""

    def __init__(self) -> None:
        self.connections_opened = 0
        self.retries = 0
        self.rejected_busy = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "connections_opened": self.connections_opened,
            "retries": self.retries,
            "rejected_busy": self.rejected_busy,
        }


class ServiceClient:
    """Talks to one motif service instance over a persistent HTTP connection.

    Not thread-safe: one client wraps one keep-alive connection, so
    concurrent callers should hold one client each (they are cheap — the
    socket opens lazily on first use). :meth:`close` drops the connection;
    the client reopens on the next call, so it is also a context manager
    that can be reused after exiting.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8723,
        timeout: float = 300.0,
        retries: int = DEFAULT_RETRIES,
        backoff: float = DEFAULT_BACKOFF_SECONDS,
        backoff_cap: float = DEFAULT_BACKOFF_CAP_SECONDS,
        retry_deadline: float = DEFAULT_RETRY_DEADLINE_SECONDS,
    ) -> None:
        if retries < 0:
            raise ReproError(f"retries must be non-negative, got {retries}")
        if backoff <= 0 or backoff_cap < backoff:
            raise ReproError(
                f"backoff must be positive and backoff_cap >= backoff, got "
                f"{backoff!r}/{backoff_cap!r}"
            )
        if retry_deadline <= 0:
            raise ReproError(
                f"retry_deadline must be positive, got {retry_deadline!r}"
            )
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.backoff_cap = float(backoff_cap)
        self.retry_deadline = float(retry_deadline)
        self.counters = ClientStats()
        #: The ``X-Request-Id`` sent with the most recent batch; the same id
        #: comes back on every NDJSON record envelope and in the server's
        #: structured log, so one value correlates all three sides.
        self.last_request_id: Optional[str] = None
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------- plumbing
    def _connection(self) -> http.client.HTTPConnection:
        """The persistent connection, opened lazily (and after drops)."""
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self.counters.connections_opened += 1
        return self._conn

    def _drop_connection(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def close(self) -> None:
        """Drop the persistent connection (reopened on the next call)."""
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _backoff_delay(self, attempt: int, retry_after: Optional[str]) -> float:
        """Sleep length before retry *attempt* (exponential, jittered).

        The service's ``Retry-After`` hint acts as a floor — backing off
        *less* than the server asked for just earns another rejection.
        Jitter spreads concurrent clients over ``[0.5x, 1.5x]`` so a burst
        rejected together does not retry as a burst.
        """
        delay = min(self.backoff_cap, self.backoff * (2.0**attempt))
        delay *= 0.5 + random.random()
        if retry_after is not None:
            try:
                delay = max(delay, float(retry_after))
            except ValueError:
                pass  # a malformed hint never breaks the retry loop
        return delay

    def _request_with_retry(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
        retries: Optional[int] = None,
    ) -> http.client.HTTPResponse:
        """Send one request, retrying transient failures; the 2xx response.

        Retries connection-level failures (the response never started) and
        :data:`RETRYABLE_STATUSES`, sleeping :meth:`_backoff_delay` between
        attempts under the client's hard ``retry_deadline``. Non-retryable
        statuses raise :class:`ServiceError` with the structured body.
        """
        budget = min(self.retries if retries is None else retries, 10_000)
        deadline = time.monotonic() + self.retry_deadline
        attempt = 0
        while True:
            failure: ServiceError
            retry_after: Optional[str] = None
            try:
                conn = self._connection()
                conn.request(method, path, body=body, headers=headers or {})
                response = conn.getresponse()
            except RETRYABLE_EXCEPTIONS as error:
                # The response never started, so nothing was delivered and
                # a retry cannot duplicate work. The connection is dead
                # either way.
                self._drop_connection()
                failure = ServiceError(
                    f"connection to {self.host}:{self.port} failed: "
                    f"{error or type(error).__name__}"
                )
                failure.__cause__ = error
            else:
                if response.status not in RETRYABLE_STATUSES:
                    return response
                retry_after = response.getheader("Retry-After")
                payload = self._parse_json(response.read() or b"{}", response.status)
                if response.will_close:
                    self._drop_connection()
                if response.status == 429:
                    self.counters.rejected_busy += 1
                failure = self._error_from(response.status, payload)
            if attempt >= budget or time.monotonic() >= deadline:
                raise failure
            delay = min(
                self._backoff_delay(attempt, retry_after),
                max(0.0, deadline - time.monotonic()),
            )
            time.sleep(delay)
            self.counters.retries += 1
            attempt += 1

    def _get_json(self, path: str, retries: Optional[int] = None) -> Dict[str, Any]:
        response = self._request_with_retry("GET", path, retries=retries)
        body = response.read()
        if response.will_close:
            self._drop_connection()
        payload = self._parse_json(body, response.status)
        if response.status != 200:
            raise self._error_from(response.status, payload)
        return payload

    @staticmethod
    def _parse_json(body: bytes, status: int) -> Dict[str, Any]:
        try:
            return json.loads(body)
        except ValueError as error:
            raise ServiceError(
                f"service sent invalid JSON (HTTP {status}): {error}", status=status
            ) from error

    @staticmethod
    def _error_from(status: int, payload: Dict[str, Any]) -> ServiceError:
        detail = payload.get("error", {}) if isinstance(payload, dict) else {}
        message = detail.get("message", f"service returned HTTP {status}")
        return ServiceError(message, status=status, payload=detail)

    # ------------------------------------------------------------------ endpoints
    def health(self) -> Dict[str, Any]:
        """``GET /v1/health``."""
        return self._get_json("/v1/health")

    def stats(self) -> Dict[str, Any]:
        """``GET /v1/stats`` — the *service's* counters (``self.counters``
        holds this client's own retry/connection telemetry)."""
        return self._get_json("/v1/stats")

    def metrics(self) -> str:
        """``GET /v1/metrics`` — the raw Prometheus text exposition."""
        response = self._request_with_retry("GET", "/v1/metrics")
        body = response.read()
        if response.will_close:
            self._drop_connection()
        if response.status != 200:
            raise self._error_from(
                response.status, self._parse_json(body, response.status)
            )
        return body.decode("utf-8")

    def wait_until_healthy(
        self,
        timeout: float = 10.0,
        interval: float = 0.05,
        max_interval: float = 1.0,
    ) -> Dict[str, Any]:
        """Poll ``/v1/health`` until the service answers; raise on timeout.

        Polls with exponential backoff from *interval* up to *max_interval*
        (jittered), so a slow-starting service is probed densely at first
        without hammering a wedged one for the whole budget. The timeout
        error distinguishes a service that was **never reachable**
        (connection refused — wrong port, crashed process) from one that
        was reached but **answered unhealthily**, because the two are
        debugged completely differently.
        """
        deadline = time.monotonic() + timeout
        delay = max(0.001, interval)
        last_error: Optional[BaseException] = None
        while True:
            try:
                return self._get_json("/v1/health", retries=0)
            except (OSError, ServiceError) as error:
                self._drop_connection()
                last_error = error
            if time.monotonic() >= deadline:
                if isinstance(last_error, ServiceError):
                    detail = f"it answered but was unhealthy: {last_error}"
                else:
                    detail = (
                        f"it was never reachable (connection failed: "
                        f"{last_error or type(last_error).__name__})"
                    )
                raise ServiceError(
                    f"service at {self.host}:{self.port} did not become "
                    f"healthy within {timeout:.1f}s — {detail}"
                ) from last_error
            sleep = delay * (0.5 + random.random())
            time.sleep(min(sleep, max(0.0, deadline - time.monotonic())))
            delay = min(delay * 2.0, max_interval)

    def batch_stream(
        self, requests: List[RequestLike], request_id: Optional[str] = None
    ) -> Iterator[Dict[str, Any]]:
        """``POST /v1/batch``, yielding each NDJSON record as it arrives.

        Records come back in completion order (see the service docs): one
        ``ok``/``error`` record per request plus the trailing ``done``
        summary. Non-2xx responses raise :class:`ServiceError` before
        anything is yielded; transient refusals (429/503, connection drops
        before the response starts) are retried with backoff first. Once
        the stream has started, failures are **not** retried — records were
        already delivered — and surface as the connection error they are.

        Every batch travels with an ``X-Request-Id`` header — *request_id*
        if given, else the ambient :func:`repro.obs.trace.trace` id, else a
        fresh one — recorded as :attr:`last_request_id`. The service echoes
        it on each streamed record, so a batch can be correlated with the
        server's structured log after the fact.
        """
        body = json.dumps(
            {"requests": [request_to_dict(request) for request in requests]}
        ).encode("utf-8")
        self.last_request_id = (
            request_id or current_request_id() or new_request_id()
        )
        response = self._request_with_retry(
            "POST",
            "/v1/batch",
            body=body,
            headers={
                "Content-Type": "application/json",
                REQUEST_ID_HEADER: self.last_request_id,
            },
        )
        if response.status != 200:
            payload = self._parse_json(response.read(), response.status)
            if response.will_close:
                self._drop_connection()
            raise self._error_from(response.status, payload)
        completed = False
        try:
            for line in response:
                line = line.strip()
                if not line:
                    continue
                yield json.loads(line)
            completed = True
        finally:
            # A fully-read chunked response leaves the keep-alive connection
            # clean for the next call; an abandoned or broken stream leaves
            # unread data on the wire, so the connection must go.
            if not completed or not response.isclosed() or response.will_close:
                self._drop_connection()

    def evolve_stream(
        self,
        source: Union[str, Path],
        spec: Optional[Any] = None,
        request_id: Optional[str] = None,
    ) -> Iterator[Dict[str, Any]]:
        """``POST /v1/evolve``, yielding each NDJSON record as it arrives.

        Records come back in **chain order**: one ``{"status": "ok",
        "snapshot": {...}}`` record per snapshot, then the ``done`` summary
        with per-mode tallies. *spec* may be an :class:`~repro.api.EvolveSpec`,
        its wire dict, or ``None`` (server defaults). The same retry /
        request-id / keep-alive semantics as :meth:`batch_stream` apply —
        in particular a stream that has started is never retried.
        """
        if not isinstance(source, (str, Path)):
            raise ReproError(
                f"only named/path sources travel over the wire, got "
                f"{type(source).__name__}"
            )
        if spec is None:
            spec_mapping: Dict[str, Any] = {"type": "evolve"}
        elif isinstance(spec, dict):
            spec_mapping = spec
        else:
            spec_mapping = spec_to_dict(spec)
        body = json.dumps({"source": str(source), "spec": spec_mapping}).encode(
            "utf-8"
        )
        self.last_request_id = (
            request_id or current_request_id() or new_request_id()
        )
        response = self._request_with_retry(
            "POST",
            "/v1/evolve",
            body=body,
            headers={
                "Content-Type": "application/json",
                REQUEST_ID_HEADER: self.last_request_id,
            },
        )
        if response.status != 200:
            payload = self._parse_json(response.read(), response.status)
            if response.will_close:
                self._drop_connection()
            raise self._error_from(response.status, payload)
        completed = False
        try:
            for line in response:
                line = line.strip()
                if not line:
                    continue
                yield json.loads(line)
            completed = True
        finally:
            if not completed or not response.isclosed() or response.will_close:
                self._drop_connection()

    def evolve(
        self,
        source: Union[str, Path],
        spec: Optional[Any] = None,
        request_id: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """``POST /v1/evolve``, collecting the snapshot dicts in chain order.

        Waits for the whole stream, checks the ``done`` summary arrived and
        that its ``count`` matches the snapshots delivered, and raises
        :class:`ServiceError` on an ``error``/``aborted`` record.
        """
        snapshots: List[Dict[str, Any]] = []
        done: Optional[Dict[str, Any]] = None
        for record in self.evolve_stream(source, spec, request_id=request_id):
            status = record.get("status")
            if status == "ok":
                snapshots.append(record["snapshot"])
            elif status in ("error", "aborted"):
                detail = record.get("error", {})
                raise ServiceError(
                    f"evolve stream failed: "
                    f"{detail.get('message', 'unknown error')}",
                    payload=detail,
                )
            elif status == "done":
                done = record
        if done is None:
            raise ServiceError("evolve stream ended without a 'done' summary")
        if done.get("count") != len(snapshots):
            raise ServiceError(
                f"evolve stream delivered {len(snapshots)} snapshots but the "
                f"summary counted {done.get('count')}"
            )
        return snapshots

    def batch(
        self, requests: List[RequestLike], request_id: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """``POST /v1/batch``, collecting result dicts in **request order**.

        The streaming inverse of :meth:`batch_stream` for callers that just
        want the answers: waits for the whole stream, checks the ``done``
        summary arrived (a missing summary means the stream was truncated),
        and raises :class:`ServiceError` on the first per-request error
        record.
        """
        results: Dict[int, Dict[str, Any]] = {}
        done: Optional[Dict[str, Any]] = None
        for record in self.batch_stream(requests, request_id=request_id):
            status = record.get("status")
            if status == "ok":
                results[record["index"]] = record["result"]
            elif status == "error":
                detail = record.get("error", {})
                raise ServiceError(
                    f"request {record.get('index')} failed: "
                    f"{detail.get('message', 'unknown error')}",
                    payload=detail,
                )
            elif status == "aborted":
                detail = record.get("error", {})
                raise ServiceError(
                    f"batch aborted by the service: "
                    f"{detail.get('message', 'unknown error')}",
                    payload=detail,
                )
            elif status == "done":
                done = record
        if done is None:
            raise ServiceError("result stream ended without a 'done' summary")
        if len(results) != len(requests):
            raise ServiceError(
                f"stream delivered {len(results)} results for "
                f"{len(requests)} requests"
            )
        return [results[index] for index in range(len(requests))]

    def __repr__(self) -> str:
        return f"ServiceClient(http://{self.host}:{self.port})"
