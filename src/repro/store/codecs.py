"""Encode/decode typed artifacts to the store's ``(arrays, meta)`` form.

One codec per artifact kind, each a pure function pair: ``encode_*`` renders
a domain object into plain NumPy arrays plus JSON-typed metadata, and
``decode_*`` rebuilds it, returning ``None`` whenever the stored shape does
not match expectations (a decode failure is a cache miss, never an error —
the engine falls back to recomputing). Decoders always copy mutable payloads
out of the shared read-only arrays, so a caller mutating a decoded result
cannot poison the memory tier.

Artifact parameter mappings (the spec half of every key) are built here too,
so the engine and the serving driver key artifacts identically.
"""

from __future__ import annotations

from numbers import Integral
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.motifs.counts import MotifCounts
from repro.motifs.patterns import NUM_MOTIFS
from repro.projection.projected_graph import ProjectedGraph
from repro.randomization.null_model import NullModelCounts

#: Artifact kinds persisted by the engine.
KIND_PROJECTION = "projection"
KIND_COUNT = "count"
KIND_NULL = "null-counts"
KIND_PROFILE = "profile"
KIND_HYPERWEDGES = "hyperwedges"
KIND_PREDICT = "predict"
KIND_LINEAGE = "lineage"


def _canonical_seed(seed: Any) -> Optional[int]:
    """Seeds are part of artifact identity only when replayable (integers)."""
    return int(seed) if isinstance(seed, Integral) else None


# ------------------------------------------------------------------- params
def projection_params() -> Dict[str, Any]:
    """The full projection is parameter-free: one artifact per fingerprint."""
    return {"kind": KIND_PROJECTION}


def hyperwedge_params() -> Dict[str, Any]:
    """The hyperwedge list is parameter-free: one artifact per fingerprint.

    The list is a pure function of the projection (every adjacent hyperedge
    pair, lexicographic), so like the projection it needs no spec in its key.
    """
    return {"kind": KIND_HYPERWEDGES}


def predict_params(spec, context_window, test_window) -> Dict[str, Any]:
    """Canonical parameter mapping of a :class:`~repro.api.PredictSpec` run.

    The *resolved* windows are part of the key (not the spec's possibly-None
    defaults), so a default-split run and an explicit run over the same
    windows share one artifact. Only runs with the default classifier bank
    are persisted; the marker keeps a future custom-classifier key disjoint.
    """
    return {
        "context": [int(context_window[0]), int(context_window[1])],
        "test": [int(test_window[0]), int(test_window[1])],
        "replace_fraction": float(spec.replace_fraction),
        "max_positives": spec.max_positives,
        "seed": _canonical_seed(spec.seed),
        "classifiers": "default",
    }


def count_params(spec) -> Dict[str, Any]:
    """Canonical parameter mapping of a :class:`~repro.api.CountSpec`."""
    return {
        "algorithm": spec.algorithm,
        "num_samples": spec.num_samples,
        "sampling_ratio": spec.sampling_ratio,
        "num_workers": spec.num_workers,
        "seed": _canonical_seed(spec.seed),
        "projection": spec.projection,
        "budget": spec.budget,
        "policy": spec.policy,
    }


def null_params(spec) -> Dict[str, Any]:
    """Canonical parameters of a null-model run (Profile/CompareSpec share them)."""
    return {
        "num_random": spec.num_random,
        "null_model": spec.null_model,
        "algorithm": spec.algorithm,
        "sampling_ratio": spec.sampling_ratio,
        "seed": _canonical_seed(spec.seed),
    }


def profile_params(spec) -> Dict[str, Any]:
    """Canonical parameter mapping of a :class:`~repro.api.ProfileSpec`."""
    params = null_params(spec)
    params["epsilon"] = float(spec.epsilon)
    return params


def lineage_params() -> Dict[str, Any]:
    """Lineage sidecars are parameter-free: one record per child fingerprint."""
    return {"kind": KIND_LINEAGE}


# ------------------------------------------------------------------ lineage
def encode_lineage(
    parent: str,
    digest_of_delta: str,
    depth: int,
    label: str,
    added_edges: int,
    total_edges: int,
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Render one snapshot-lineage record (chain edge ``parent -> child``).

    The sidecar carries no payload of its own — shared count/projection
    payloads stay filed under their own keys — only the chain metadata the
    serving layer needs to recognize a warm snapshot and to report chain
    depth in ``cache ls --json``.
    """
    return (
        {"sizes": np.asarray([added_edges, total_edges], dtype=np.int64)},
        {
            "parent": str(parent),
            "delta_digest": str(digest_of_delta),
            "depth": int(depth),
            "label": str(label),
        },
    )


def decode_lineage(
    arrays: Mapping[str, np.ndarray], meta: Mapping[str, Any]
) -> Optional[Dict[str, Any]]:
    """Rebuild a lineage record as a plain dict; ``None`` on a mismatch."""
    sizes = arrays.get("sizes")
    parent = meta.get("parent")
    digest_of_delta = meta.get("delta_digest")
    depth = meta.get("depth")
    if (
        sizes is None
        or sizes.shape != (2,)
        or not isinstance(parent, str)
        or not isinstance(digest_of_delta, str)
        or not isinstance(depth, int)
        or isinstance(depth, bool)
        or depth < 1
    ):
        return None
    return {
        "parent": parent,
        "delta_digest": digest_of_delta,
        "depth": depth,
        "label": str(meta.get("label", "")),
        "added_edges": int(sizes[0]),
        "total_edges": int(sizes[1]),
    }


# --------------------------------------------------------------- projection
def encode_projection(
    projection: ProjectedGraph,
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Render a projected graph as its raw CSR adjacency arrays."""
    arrays = projection.adjacency_arrays()
    return (
        {"ptr": arrays.ptr, "idx": arrays.idx, "weight": arrays.weight},
        {"num_vertices": int(projection.num_hyperedges)},
    )


def decode_projection(
    arrays: Mapping[str, np.ndarray],
    meta: Mapping[str, Any],
    expected_vertices: int,
) -> Optional[ProjectedGraph]:
    """Rebuild a projected graph; ``None`` if the stored shape is inconsistent."""
    try:
        ptr, idx, weight = arrays["ptr"], arrays["idx"], arrays["weight"]
        num_vertices = int(meta["num_vertices"])
    except (KeyError, TypeError, ValueError):
        return None
    if num_vertices != expected_vertices:
        return None
    if len(ptr) != num_vertices + 1 or len(idx) != len(weight):
        return None
    if len(ptr) and int(ptr[-1]) != len(idx):
        return None
    return ProjectedGraph.from_csr(num_vertices, ptr, idx, weight)


# -------------------------------------------------------------- hyperwedges
def encode_hyperwedges(
    wedges,
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Render the hyperwedge list ``∧`` as an ``(n, 2)`` int64 pair array."""
    pairs = np.asarray(list(wedges), dtype=np.int64).reshape(-1, 2)
    return {"pairs": pairs}, {"num_hyperwedges": int(pairs.shape[0])}


def decode_hyperwedges(
    arrays: Mapping[str, np.ndarray], num_hyperedges: int
) -> Optional[list]:
    """Rebuild the hyperwedge list; ``None`` on a shape or range mismatch.

    The pairs index hyperedges of the fingerprinted hypergraph, so anything
    out of ``[0, num_hyperedges)`` marks the artifact inconsistent.
    """
    pairs = arrays.get("pairs")
    if pairs is None or pairs.ndim != 2 or pairs.shape[1] != 2:
        return None
    if pairs.size and (pairs.min() < 0 or pairs.max() >= num_hyperedges):
        return None
    return [(int(a), int(b)) for a, b in pairs]


# ----------------------------------------------------------------- predict
def encode_predict(
    result,
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Render a :class:`PredictionExperimentResult` as parallel score arrays."""
    scores = list(result.scores)
    return (
        {
            "accuracy": np.asarray([s.accuracy for s in scores], dtype=float),
            "auc": np.asarray([s.auc for s in scores], dtype=float),
        },
        {
            "classifiers": [s.classifier for s in scores],
            "feature_sets": [s.feature_set for s in scores],
        },
    )


def decode_predict(
    arrays: Mapping[str, np.ndarray], meta: Mapping[str, Any]
) -> Optional["PredictionExperimentResult"]:
    """Rebuild a :class:`PredictionExperimentResult`; ``None`` on a mismatch."""
    from repro.prediction.task import PredictionExperimentResult, PredictionScore

    accuracy = arrays.get("accuracy")
    auc = arrays.get("auc")
    classifiers = meta.get("classifiers")
    feature_sets = meta.get("feature_sets")
    if (
        accuracy is None
        or auc is None
        or not isinstance(classifiers, list)
        or not isinstance(feature_sets, list)
        or accuracy.ndim != 1
        or accuracy.shape != auc.shape
        or len(classifiers) != accuracy.shape[0]
        or len(feature_sets) != accuracy.shape[0]
    ):
        return None
    result = PredictionExperimentResult()
    for name, feature_set, acc, area in zip(
        classifiers, feature_sets, accuracy, auc
    ):
        result.scores.append(
            PredictionScore(
                classifier=str(name),
                feature_set=str(feature_set),
                accuracy=float(acc),
                auc=float(area),
            )
        )
    return result


# ------------------------------------------------------------------- counts
def encode_counts(
    counts: MotifCounts, meta: Mapping[str, Any]
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Render a count vector plus run metadata (algorithm, samples, mode)."""
    return {"counts": counts.to_array()}, dict(meta)


def decode_counts(arrays: Mapping[str, np.ndarray]) -> Optional[MotifCounts]:
    """Rebuild the count vector; ``None`` on a shape mismatch."""
    values = arrays.get("counts")
    if values is None or values.shape != (NUM_MOTIFS,):
        return None
    return MotifCounts(np.asarray(values, dtype=float))


# -------------------------------------------------------------- null counts
def encode_null_counts(
    null: NullModelCounts,
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Render a null-model run: the per-sample count stack (mean is derived)."""
    stack = np.stack([counts.to_array() for counts in null.per_sample_counts])
    return (
        {"per_sample": stack, "mean": null.mean_counts.to_array()},
        {"null_model": null.null_model},
    )


def decode_null_counts(
    arrays: Mapping[str, np.ndarray], meta: Mapping[str, Any]
) -> Optional[NullModelCounts]:
    """Rebuild a :class:`NullModelCounts`; ``None`` on a shape mismatch."""
    stack = arrays.get("per_sample")
    mean = arrays.get("mean")
    if (
        stack is None
        or mean is None
        or stack.ndim != 2
        or stack.shape[1] != NUM_MOTIFS
        or mean.shape != (NUM_MOTIFS,)
    ):
        return None
    return NullModelCounts(
        mean_counts=MotifCounts(np.asarray(mean, dtype=float)),
        per_sample_counts=[
            MotifCounts(np.asarray(row, dtype=float)) for row in stack
        ],
        null_model=str(meta.get("null_model", "")),
    )


# ----------------------------------------------------------------- profiles
def encode_profile(
    profile,
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Render a :class:`CharacteristicProfile` (values, significances, counts)."""
    return (
        {
            "values": np.asarray(profile.values, dtype=float),
            "significances": np.asarray(profile.significances, dtype=float),
            "real_counts": profile.real_counts.to_array(),
            "random_counts": profile.random_counts.to_array(),
        },
        {"name": profile.name},
    )


def decode_profile(
    arrays: Mapping[str, np.ndarray], name: str
) -> Optional["CharacteristicProfile"]:
    """Rebuild a :class:`CharacteristicProfile`; ``None`` on a shape mismatch."""
    from repro.profile.characteristic_profile import CharacteristicProfile

    required = ("values", "significances", "real_counts", "random_counts")
    if any(
        arrays.get(key) is None or arrays[key].shape != (NUM_MOTIFS,)
        for key in required
    ):
        return None
    return CharacteristicProfile(
        name=name,
        values=np.asarray(arrays["values"], dtype=float).copy(),
        significances=np.asarray(arrays["significances"], dtype=float).copy(),
        real_counts=MotifCounts(np.asarray(arrays["real_counts"], dtype=float)),
        random_counts=MotifCounts(np.asarray(arrays["random_counts"], dtype=float)),
    )
