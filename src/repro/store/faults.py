"""Fault injection points for chaos-testing the serving and store stack.

Failure paths are first-class design surface in this codebase — the store
degrades to its memory tier when disk or locks misbehave, the worker pool
survives a crashed process, the HTTP service sheds load with structured
429s — but such paths are unreachable from ordinary tests without either
monkeypatching internals (fragile, and useless across a process boundary)
or real fault hardware. This module gives the production code *named
injection points* instead: each hardened code path asks the registry
"should I fail here?" and the chaos suite arms exactly the failure it wants
to observe. When nothing is armed — the production case — the check is one
dict lookup plus one environment probe and nothing else.

Injection points currently wired (each named ``layer.event``):

===========================  =====================================================
``store.disk_write``         :meth:`LSMDiskTier.put` raises
                             :class:`InjectedFault` (an ``OSError``), exercising
                             the degrade-to-memory write path.
``store.lock_acquire``       :meth:`FileLock.acquire` reports timeout-style
                             contention (returns ``False``), exercising
                             ``stats.lock_contention`` degradation.
``store.manifest_append``    The LSM tier's manifest mutation points. Fires
                             with key ``"<kind>:<fingerprint>"`` just before a
                             put's log record is appended (payload already on
                             disk — an orphan for gc), and during compaction
                             with keys ``"compact:<shard>:base"`` (before the
                             new base is published) and
                             ``"compact:<shard>:log"`` (base published, log
                             not yet truncated). ``crash`` mode at any of the
                             three is what the replay-on-open chaos tests use
                             to prove no committed artifact is lost.
``serve.unit``               :func:`dispatch_spec` — every execution backend —
                             can sleep (slow unit) or raise (failing unit). The
                             key is ``"<dataset>:<SpecType>"``.
``worker.unit``              :func:`execute_payload`, in the worker process:
                             ``crash`` mode kills the worker with ``os._exit``,
                             simulating a segfault/OOM-kill mid-batch.
``server.drop_connection``   The HTTP handler closes the connection before
                             writing any response, exercising client retries.
===========================  =====================================================

Faults are armed either **in-process** via :func:`inject` (or the
:func:`injected` context manager), or **cross-process** via the
:data:`ENV_FAULTS` environment variable — a JSON object mapping point names
to fault fields — which forked/spawned worker processes inherit. An
environment fault cannot decrement a shared ``times`` counter across
processes, so one-shot semantics there use ``once_path``: a latch file
created atomically (``O_CREAT | O_EXCL``) by whichever process fires first;
every later match sees the latch and stays quiet. That is what lets a chaos
test crash a process worker *exactly once* and then watch the respawned
worker serve the retry.

Modes
-----
``error``
    :func:`fire` raises :class:`InjectedFault` (an ``OSError`` subclass, so
    disk-failure absorption paths treat it exactly like a real disk error).
``sleep``
    :func:`fire` sleeps ``seconds`` then returns (slow unit / slow disk).
``crash``
    :func:`fire` calls ``os._exit(3)`` — no cleanup, no exception, the
    closest a test can get to ``SIGKILL`` from inside the victim.
``deny``
    Never fired by :func:`fire`; consumed by :func:`denied`, the form used
    by call sites that must *report* failure (a lock acquire returning
    ``False``, a handler dropping a connection) rather than raise.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Optional

#: Environment variable carrying cross-process fault specs (JSON object
#: mapping point name -> fault fields), inherited by worker processes.
ENV_FAULTS = "REPRO_FAULTS"

#: Accepted fault modes (see the module docstring).
MODES = ("error", "sleep", "crash", "deny")


class InjectedFault(OSError):
    """The exception raised by an armed ``error``-mode fault.

    Subclasses :class:`OSError` on purpose: the store's disk-write hardening
    absorbs ``OSError``, so an injected disk failure takes exactly the code
    path a full disk or revoked permission would.
    """


@dataclass
class Fault:
    """One armed fault: what to do, how often, and for which contexts."""

    point: str
    mode: str = "error"
    times: Optional[int] = 1
    seconds: float = 0.0
    key: Optional[str] = None
    once_path: Optional[str] = None
    message: str = ""

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"fault mode must be one of {MODES}, got {self.mode!r}")
        if self.times is not None and self.times <= 0:
            raise ValueError(f"times must be positive or None, got {self.times}")

    def matches(self, key: Optional[str]) -> bool:
        """Whether this fault applies to a call-site context *key*.

        An armed fault without a key matches every firing of its point; with
        one, the fault's key must be a substring of the call site's (points
        pass human-readable context labels like ``"alpha.txt:ProfileSpec"``).
        """
        if self.key is None:
            return True
        return self.key in (key or "")

    def describe(self) -> str:
        scope = f" key={self.key!r}" if self.key else ""
        return f"{self.point}[{self.mode}{scope}]"


_registry: Dict[str, Fault] = {}
_lock = threading.Lock()


def inject(
    point: str,
    mode: str = "error",
    times: Optional[int] = 1,
    seconds: float = 0.0,
    key: Optional[str] = None,
    once_path: Optional[str] = None,
    message: str = "",
) -> Fault:
    """Arm one fault at *point* for this process (see the module docstring).

    ``times`` bounds how often it fires (``None`` = every match); ``key``
    restricts it to matching call-site contexts; ``once_path`` adds the
    cross-process one-shot latch. Re-injecting a point replaces its fault.
    """
    fault = Fault(
        point=point,
        mode=mode,
        times=times,
        seconds=seconds,
        key=key,
        once_path=once_path,
        message=message,
    )
    with _lock:
        _registry[point] = fault
    return fault


def clear(point: Optional[str] = None) -> None:
    """Disarm one point, or every armed fault when *point* is ``None``."""
    with _lock:
        if point is None:
            _registry.clear()
        else:
            _registry.pop(point, None)


def active() -> Dict[str, Fault]:
    """Snapshot of the in-process registry (environment faults excluded)."""
    with _lock:
        return dict(_registry)


@contextmanager
def injected(point: str, **fields: Any) -> Iterator[Fault]:
    """Arm a fault for the duration of a ``with`` block, then disarm it."""
    fault = inject(point, **fields)
    try:
        yield fault
    finally:
        clear(point)


def encode_env(faults: Mapping[str, Mapping[str, Any]]) -> str:
    """Render fault specs into the :data:`ENV_FAULTS` wire form.

    ``faults`` maps point names to :class:`Fault` field mappings, e.g.
    ``{"worker.unit": {"mode": "crash", "once_path": "/tmp/latch"}}``.
    Specs are validated here so a typo fails the test arming the fault, not
    silently in a worker process.
    """
    for point, fields in faults.items():
        Fault(point=point, **dict(fields))  # validate eagerly
    return json.dumps(
        {point: dict(fields) for point, fields in faults.items()}, sort_keys=True
    )


def _from_env(point: str) -> Optional[Fault]:
    raw = os.environ.get(ENV_FAULTS)
    if not raw:
        return None
    try:
        specs = json.loads(raw)
        fields = specs.get(point)
        if fields is None:
            return None
        return Fault(point=point, **dict(fields))
    except (ValueError, TypeError):
        return None  # malformed env spec: never break production code


def _consume(point: str, key: Optional[str], mode_filter: tuple) -> Optional[Fault]:
    """The fault to act on at *point* right now, honoring counters/latches."""
    with _lock:
        fault = _registry.get(point)
        if fault is not None:
            if fault.mode not in mode_filter or not fault.matches(key):
                return None
            if fault.once_path is not None and not _latch(fault.once_path):
                return None
            if fault.times is not None:
                fault.times -= 1
                if fault.times == 0:
                    del _registry[point]
            return fault
    fault = _from_env(point)
    if fault is None or fault.mode not in mode_filter or not fault.matches(key):
        return None
    # Environment faults cannot share a counter across processes; one-shot
    # semantics come from the latch file (atomic O_EXCL create, first
    # process wins). A latchless env fault fires on every match.
    if fault.once_path is not None and not _latch(fault.once_path):
        return None
    return fault


def _latch(path: str) -> bool:
    """Win the cross-process one-shot latch at *path*; ``False`` if taken."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        return False
    except OSError:
        return True  # unlatchable path: fire rather than silently disarm
    try:
        os.write(fd, str(os.getpid()).encode("ascii"))
    finally:
        os.close(fd)
    return True


def fire(point: str, key: Optional[str] = None) -> None:
    """The production-code hook: act out any armed fault at *point*.

    No-op (one dict lookup + one env probe) when nothing is armed. An
    ``error`` fault raises :class:`InjectedFault`; ``sleep`` blocks for the
    fault's ``seconds``; ``crash`` exits the process immediately.
    ``deny``-mode faults are ignored here — they belong to :func:`denied`.
    """
    if not _registry and ENV_FAULTS not in os.environ:
        return
    fault = _consume(point, key, mode_filter=("error", "sleep", "crash"))
    if fault is None:
        return
    if fault.mode == "sleep":
        time.sleep(fault.seconds)
        return
    if fault.mode == "crash":
        os._exit(3)
    raise InjectedFault(
        fault.message or f"injected fault at {fault.describe()} (key={key!r})"
    )


def denied(point: str, key: Optional[str] = None) -> bool:
    """Whether an armed ``deny`` fault matches — the report-style hook.

    Used by call sites whose failure contract is a return value, not an
    exception: a lock acquire timing out (returns ``False``), a handler
    dropping a connection. ``True`` consumes one firing.
    """
    if not _registry and ENV_FAULTS not in os.environ:
        return False
    return _consume(point, key, mode_filter=("deny",)) is not None
