"""HTTP serving front door: a streaming motif service over the engine server.

This is the network layer the serving stack was built toward: one long-lived
:class:`~repro.store.serve.EngineServer` — warm engine pool, shared artifact
store, persistent :class:`~repro.store.executors.WorkerPool` — wrapped in a
stdlib-only threaded HTTP server. No framework, no extra dependency: request
handling is :mod:`http.server`, concurrency is one handler thread per
connection dispatching onto the engine server's pool.

Endpoints
---------
``POST /v1/batch``
    Accepts the same wire format as the ``serve-batch`` CLI — a JSON object
    ``{"requests": [...]}``, a bare JSON array, or JSONL (one request record
    per line), each record ``{"source": ..., "spec": {...}}`` (spec fields
    may be inlined beside ``source``). The batch is validated **before**
    dispatch: malformed JSON, unknown spec types/fields, invalid spec
    parameter combinations and oversized batches all return structured 4xx
    errors without touching a dataset. Valid batches stream back
    ``application/x-ndjson``, one record per request **in completion order**
    as units finish (chunked transfer, flushed per record):

    - ``{"index": i, "status": "ok", "result": {...}}`` — the request's
      typed result, exactly its ``to_dict()`` form;
    - ``{"index": i, "status": "error", "error": {"type": ..., "message":
      ...}}`` — a unit that failed *during execution* (e.g. an unknown
      dataset file); other units keep streaming;
    - a final ``{"status": "done", "count": n, "ok": n, "errors": n, ...}``
      summary record, so clients can tell a complete stream from a
      truncated one.

``POST /v1/evolve``
    Temporal-chain serving: one JSON object ``{"source": ..., "spec":
    {...}}`` (an ``EvolveSpec`` wire form; ``"type"`` may be omitted) —
    validated before dispatch, then streamed back as
    ``application/x-ndjson`` with **one record per snapshot in chain
    order** (``{"status": "ok", "snapshot": {...}}``) and a final ``done``
    summary carrying per-mode tallies. Exact cumulative chains are served
    by the incremental delta engine, warm snapshots straight from the
    store's lineage artifacts.

``GET /v1/health``
    Liveness: version, uptime, in-flight batches.

``GET /v1/stats``
    The engine server's :meth:`~repro.store.serve.EngineServer.describe`
    snapshot (engine-pool occupancy, serving counters, store tier hits and
    lock contention, worker-pool shape, histogram latency summaries) plus
    HTTP-level counters.

``GET /v1/metrics``
    The process-wide :mod:`repro.obs` registry in Prometheus text exposition
    format 0.0.4 — per-stage server latency histograms, admission
    rejections, serve dedup/cache-tier/unit-failure counters, executor
    queue-wait and respawn metrics, per-shard LSM put/get/compaction/
    eviction/occupancy metrics. Suitable for a Prometheus scrape target.

Every batch gets a trace id — the client's ``X-Request-Id`` header when
present (:class:`~repro.store.client.ServiceClient` always sends one),
otherwise minted here — which is echoed as a response header, stamped on
every NDJSON record envelope, propagated into executor workers (thread and
process) and attached to every structured log event of the request.

Result payloads are **bit-identical** to the ``serve-batch`` CLI's serial
output for exact and integer-seeded specs — the HTTP layer serializes the
same typed results the engine produces. Unseeded specs are served too, but
(by store design) never persisted, so they recompute on every request.

Lifecycle: :func:`build_server` constructs the server (port ``0`` picks a
free port); :func:`run` serves until SIGTERM/SIGINT and then **drains
gracefully** — the listener stops accepting, in-flight batches finish
streaming (bounded by ``drain_seconds``), then the engine server, its pool
and the store are closed.

Overload and failure behavior (see README "Operations & failure modes"):

- **Admission control** — at most ``max_queue`` batches are in flight at
  once; a batch beyond that is refused *before its body is read* with a
  structured ``429 ServerBusy`` carrying a ``Retry-After`` header and
  ``"retryable": true``. The service sheds load instead of queueing
  unboundedly; it never hangs and never turns overload into a 500.
- **Per-request deadlines** — ``request_timeout`` bounds every batch;
  units unfinished at the deadline resolve to per-unit ``UnitTimeout``
  error records (``"retryable": true``) while finished units stream
  normally.
- **Worker crashes** — a process worker dying mid-batch converts its
  in-flight units to ``WorkerCrashed`` records and the pool respawns for
  the next batch; the service stays healthy throughout.
- **Keep-alive** — connections are HTTP/1.1 persistent (responses carry
  ``Content-Length`` or chunked transfer); idle connections are reaped
  after ``_ServiceHandler.timeout`` seconds. Rejected-before-read
  responses close the connection (the unread body would desynchronize it).
"""

from __future__ import annotations

import json
import logging
import signal
import sys
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterator, List, Optional, Union

from repro import __version__
from repro.api.config import EvolveSpec, spec_from_dict
from repro.api.registry import DatasetRegistry
from repro.exceptions import ReproError, SpecError
from repro.obs import metrics as obs_metrics
from repro.obs.trace import (
    REQUEST_ID_HEADER,
    log_event,
    new_request_id,
    trace,
)
from repro.store import faults
from repro.store.artifacts import ArtifactStore
from repro.store.executors import (
    SERVE_BACKEND_SERIAL,
    SERVE_BACKEND_THREAD,
    SERVE_BACKENDS,
    UnitFailure,
    WorkerPool,
)
from repro.store.serve import EngineServer, ServeRequest, request_from_dict
from repro.utils.logging import get_logger

LOGGER = get_logger("repro.store.server")

#: Routes the service answers; anything else is labeled "other" in metrics
#: (unknown paths must not mint unbounded label values).
KNOWN_ROUTES = ("/v1/batch", "/v1/evolve", "/v1/health", "/v1/stats", "/v1/metrics")

#: Content type of the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

HTTP_REQUESTS_TOTAL = obs_metrics.counter(
    "repro_http_requests_total",
    "HTTP requests answered, by route and status code.",
    ("route", "status"),
)
STAGE_SECONDS = obs_metrics.histogram(
    "repro_server_stage_seconds",
    "Per-stage latency of one batch request: parse (read+validate body), "
    "queue (dispatch to first outcome), execute (first to last outcome), "
    "stream (total response write loop).",
    ("stage",),
)
ADMISSION_REJECTIONS_TOTAL = obs_metrics.counter(
    "repro_server_admission_rejections_total",
    "Batch requests refused before dispatch, by structured error type "
    '("ServerBusy" is the at-capacity admission gate).',
    ("reason",),
)


def _route_of(path: str) -> str:
    return path if path in KNOWN_ROUTES else "other"

#: Default bind address and port of the service.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8723

#: Hard bound on requests per batch (HTTP 413 beyond it).
DEFAULT_MAX_BATCH = 256

#: Hard bound on the request body size (HTTP 413 beyond it).
MAX_BODY_BYTES = 32 * 1024 * 1024

#: How long a graceful shutdown waits for in-flight batches to finish.
DEFAULT_DRAIN_SECONDS = 30.0

#: Bound on concurrently in-flight batches (HTTP 429 beyond it).
DEFAULT_MAX_QUEUE = 16

#: ``Retry-After`` hint (seconds) sent with a 429 ``ServerBusy`` rejection.
DEFAULT_RETRY_AFTER_SECONDS = 1


class RequestRejected(ReproError):
    """A batch request the service refuses before dispatch (a 4xx).

    Carries the HTTP status and the structured JSON error body, so the
    handler can serialize it without guessing. ``retryable`` tells clients
    machine-readably whether resubmitting the identical batch can succeed —
    true only for transient refusals (``429 ServerBusy``); malformed or
    oversized batches would be refused identically forever. A retryable
    rejection carries ``retry_after`` (seconds), serialized both as the
    ``Retry-After`` response header and in the JSON body.
    """

    def __init__(
        self,
        status: int,
        error_type: str,
        message: str,
        retryable: bool = False,
        retry_after: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.retryable = retryable
        self.retry_after = retry_after

    @property
    def payload(self) -> Dict[str, Any]:
        error: Dict[str, Any] = {
            "type": self.error_type,
            "message": str(self),
            "retryable": self.retryable,
        }
        if self.retry_after is not None:
            error["retry_after"] = self.retry_after
        return {"error": error}


def _not_found(path: str) -> Dict[str, Any]:
    """The structured 404 body for an unknown route."""
    return {
        "error": {
            "type": "NotFound",
            "message": f"no route {path!r}",
            "retryable": False,
        }
    }


class ServiceStats:
    """HTTP-level counters of one :class:`MotifService` (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started = time.time()
        self.batches_accepted = 0
        self.batches_rejected = 0
        self.batches_rejected_busy = 0
        self.batches_completed = 0
        self.results_streamed = 0
        self.errors_streamed = 0
        self.evolve_accepted = 0
        self.evolve_completed = 0
        self.snapshots_streamed = 0

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "uptime_seconds": time.time() - self.started,
                "batches_accepted": self.batches_accepted,
                "batches_rejected": self.batches_rejected,
                "batches_rejected_busy": self.batches_rejected_busy,
                "batches_completed": self.batches_completed,
                "results_streamed": self.results_streamed,
                "errors_streamed": self.errors_streamed,
                "evolve_accepted": self.evolve_accepted,
                "evolve_completed": self.evolve_completed,
                "snapshots_streamed": self.snapshots_streamed,
            }

    def count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + delta)


class MotifService:
    """The service core: request parsing, dispatch, stats — handler-agnostic.

    Owns the :class:`EngineServer` (and therefore the store and worker
    pool); the HTTP handler is a thin shell over :meth:`parse_batch`,
    :meth:`stream`, :meth:`health` and :meth:`stats_payload`, which keeps
    every behavior unit-testable without a socket.
    """

    def __init__(
        self,
        engine_server: EngineServer,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_queue: int = DEFAULT_MAX_QUEUE,
        request_timeout: Optional[float] = None,
    ) -> None:
        if max_batch <= 0:
            raise SpecError(f"max_batch must be positive, got {max_batch}")
        if max_queue <= 0:
            raise SpecError(f"max_queue must be positive, got {max_queue}")
        if request_timeout is not None and request_timeout <= 0:
            raise SpecError(
                f"request_timeout must be positive or None, got {request_timeout}"
            )
        self._server = engine_server
        self.max_batch = int(max_batch)
        self.max_queue = int(max_queue)
        self.request_timeout = (
            None if request_timeout is None else float(request_timeout)
        )
        self.stats = ServiceStats()
        self._in_flight = 0
        self._in_flight_lock = threading.Lock()

    @property
    def engine_server(self) -> EngineServer:
        return self._server

    @property
    def in_flight(self) -> int:
        """HTTP batch requests accepted and not yet fully answered.

        Counted from the moment a ``POST /v1/batch`` connection starts being
        processed — *before* any unit dispatches — so a graceful drain waits
        for batches that were accepted but have not begun streaming yet,
        instead of closing the worker pool underneath them.
        """
        with self._in_flight_lock:
            return self._in_flight

    @contextmanager
    def track_in_flight(self):
        """Bracket one admitted batch request's lifetime; reject at capacity.

        This is the admission gate: entering atomically checks the in-flight
        count against ``max_queue`` and raises a retryable ``429
        ServerBusy`` :class:`RequestRejected` (with a ``Retry-After`` hint)
        when the service is at capacity — *before* the request body is even
        read, so shedding load costs almost nothing. Admitted batches are
        counted for the whole request lifetime, which is also what a
        graceful drain waits on.
        """
        with self._in_flight_lock:
            if self._in_flight >= self.max_queue:
                self.stats.count("batches_rejected_busy")
                ADMISSION_REJECTIONS_TOTAL.inc(reason="ServerBusy")
                raise RequestRejected(
                    429,
                    "ServerBusy",
                    f"{self._in_flight} batches already in flight (limit "
                    f"{self.max_queue}); retry after a backoff",
                    retryable=True,
                    retry_after=DEFAULT_RETRY_AFTER_SECONDS,
                )
            self._in_flight += 1
        try:
            yield
        finally:
            with self._in_flight_lock:
                self._in_flight -= 1

    # ------------------------------------------------------------------ parsing
    def parse_batch(self, body: bytes) -> List[ServeRequest]:
        """Validate a ``POST /v1/batch`` body into serve requests.

        Raises :class:`RequestRejected` (a 4xx, never a 500) on malformed
        JSON, non-object records, unknown spec types/fields, invalid spec
        parameter combinations, empty and oversized batches. Nothing is
        dispatched and no dataset is loaded from here.
        """
        if len(body) > MAX_BODY_BYTES:
            raise RequestRejected(
                413, "BodyTooLarge", f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError as error:
            raise RequestRejected(
                400, "MalformedBody", f"request body is not UTF-8: {error}"
            ) from error
        records = self._extract_records(text)
        if not records:
            raise RequestRejected(400, "EmptyBatch", "the batch contains no requests")
        if len(records) > self.max_batch:
            raise RequestRejected(
                413,
                "BatchTooLarge",
                f"batch of {len(records)} requests exceeds the limit of "
                f"{self.max_batch}",
            )
        requests = []
        for index, record in enumerate(records):
            try:
                requests.append(request_from_dict(record))
            except ReproError as error:
                raise RequestRejected(
                    400, type(error).__name__, f"request {index}: {error}"
                ) from error
        return requests

    def parse_evolve(self, body: bytes) -> "tuple[str, EvolveSpec]":
        """Validate a ``POST /v1/evolve`` body into ``(source, spec)``.

        The body is one JSON object with a ``source`` (dataset name or file
        path) and either a nested ``spec`` object (``EvolveSpec`` wire form;
        ``"type"`` defaults to ``"evolve"`` here) or the spec's fields
        inlined beside ``source``. Raises :class:`RequestRejected` (4xx) on
        malformed bodies, unknown/incompatible ``spec_version`` tags,
        unknown fields and invalid parameter combinations — all before any
        dataset is touched.
        """
        if len(body) > MAX_BODY_BYTES:
            raise RequestRejected(
                413, "BodyTooLarge", f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise RequestRejected(
                400, "MalformedBody", f"invalid JSON body: {error}"
            ) from error
        if not isinstance(document, dict):
            raise RequestRejected(
                400,
                "MalformedBody",
                '"/v1/evolve" takes one JSON object with "source" and "spec"',
            )
        record = dict(document)
        source = record.pop("source", None)
        if not isinstance(source, str) or not source:
            raise RequestRejected(400, "SpecError", 'missing or invalid "source"')
        spec_mapping = record.pop("spec", None)
        if spec_mapping is None:
            spec_mapping = record  # terse form: spec fields beside "source"
        elif record:
            raise RequestRejected(
                400,
                "SpecError",
                f'unexpected keys {sorted(record)} next to "spec"',
            )
        if not isinstance(spec_mapping, dict):
            raise RequestRejected(400, "SpecError", '"spec" must be a JSON object')
        spec_mapping = dict(spec_mapping)
        spec_mapping.setdefault("type", "evolve")
        try:
            spec = spec_from_dict(spec_mapping)
        except ReproError as error:
            raise RequestRejected(400, type(error).__name__, str(error)) from error
        if not isinstance(spec, EvolveSpec):
            raise RequestRejected(
                400,
                "SpecError",
                f'"/v1/evolve" serves EvolveSpec only, got spec type '
                f"{spec_mapping.get('type')!r}",
            )
        return source, spec

    @staticmethod
    def _extract_records(text: str) -> List[Any]:
        """The list of request records in a JSON or JSONL body."""
        try:
            document = json.loads(text)
        except ValueError:
            # Not one JSON document — try JSONL (the serve-batch file format).
            records = []
            for number, line in enumerate(text.splitlines(), start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError as error:
                    raise RequestRejected(
                        400, "MalformedJSON", f"line {number}: invalid JSON ({error})"
                    ) from error
            return records
        if isinstance(document, list):
            return document
        if isinstance(document, dict):
            if "requests" in document:
                requests = document["requests"]
                if not isinstance(requests, list):
                    raise RequestRejected(
                        400,
                        "MalformedBody",
                        '"requests" must be a JSON array of request records',
                    )
                return requests
            return [document]  # a single bare request record
        raise RequestRejected(
            400,
            "MalformedBody",
            "the batch body must be a JSON object, array or JSONL lines",
        )

    # ----------------------------------------------------------------- serving
    def stream(
        self,
        requests: List[ServeRequest],
        request_id: Optional[str] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Serve a parsed batch, yielding wire records in completion order.

        Runs under the service's ``request_timeout`` (when configured):
        units unfinished at the deadline become per-unit ``UnitTimeout``
        error records and the stream still terminates with its ``done``
        summary — a slow unit degrades itself, never the batch protocol.

        When *request_id* is given, every wire record carries it on its
        envelope (never inside ``result``, so payloads stay bit-identical to
        the serial reference) — the trace id a client can correlate with the
        server's structured log.
        """
        self.stats.count("batches_accepted")
        log_event(
            LOGGER,
            "server.batch_accepted",
            level=logging.INFO,
            requests=len(requests),
        )
        started = time.perf_counter()
        first_outcome_at: Optional[float] = None
        ok = errors = 0
        for index, outcome in self._server.submit_stream(
            requests, capture_errors=True, timeout=self.request_timeout
        ):
            if first_outcome_at is None:
                first_outcome_at = time.perf_counter()
                STAGE_SECONDS.observe(first_outcome_at - started, stage="queue")
            if isinstance(outcome, UnitFailure):
                errors += 1
                self.stats.count("errors_streamed")
                record: Dict[str, Any] = {
                    "index": index,
                    "status": "error",
                    "error": outcome.as_dict(),
                }
            else:
                ok += 1
                self.stats.count("results_streamed")
                record = {"index": index, "status": "ok", "result": outcome.to_dict()}
            if request_id is not None:
                record["request_id"] = request_id
            yield record
        elapsed = time.perf_counter() - started
        STAGE_SECONDS.observe(
            elapsed - ((first_outcome_at or time.perf_counter()) - started),
            stage="execute",
        )
        self.stats.count("batches_completed")
        log_event(
            LOGGER,
            "server.batch_done",
            level=logging.INFO,
            requests=len(requests),
            ok=ok,
            errors=errors,
            seconds=round(elapsed, 6),
        )
        done: Dict[str, Any] = {
            "status": "done",
            "count": len(requests),
            "ok": ok,
            "errors": errors,
            "elapsed_seconds": elapsed,
        }
        if request_id is not None:
            done["request_id"] = request_id
        yield done

    def stream_evolve(
        self,
        source: str,
        spec: EvolveSpec,
        request_id: Optional[str] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Serve one evolution chain, yielding wire records in chain order.

        One ``{"status": "ok", "snapshot": {...}}`` record per snapshot,
        then a ``done`` summary with per-mode tallies. A failure while
        resolving the dataset or mid-chain becomes a single structured
        ``error`` record followed by the ``done`` summary — the stream
        always terminates with its protocol footer.
        """
        self.stats.count("evolve_accepted")
        log_event(
            LOGGER,
            "server.evolve_accepted",
            level=logging.INFO,
            source=source,
            mode=spec.mode,
        )
        started = time.perf_counter()
        count = errors = 0
        modes: Dict[str, int] = {}
        try:
            for snapshot in self._server.evolve_stream(source, spec):
                count += 1
                modes[snapshot.mode] = modes.get(snapshot.mode, 0) + 1
                self.stats.count("snapshots_streamed")
                record: Dict[str, Any] = {
                    "status": "ok",
                    "snapshot": snapshot.to_dict(),
                }
                if request_id is not None:
                    record["request_id"] = request_id
                yield record
        except Exception as error:  # noqa: BLE001 - becomes a wire record
            errors += 1
            self.stats.count("errors_streamed")
            record = {
                "status": "error",
                "error": {
                    "type": type(error).__name__,
                    "message": str(error),
                    "retryable": False,
                },
            }
            if request_id is not None:
                record["request_id"] = request_id
            yield record
        elapsed = time.perf_counter() - started
        self.stats.count("evolve_completed")
        log_event(
            LOGGER,
            "server.evolve_done",
            level=logging.INFO,
            source=source,
            snapshots=count,
            errors=errors,
            seconds=round(elapsed, 6),
        )
        done: Dict[str, Any] = {
            "status": "done",
            "count": count,
            "errors": errors,
            "modes": modes,
            "elapsed_seconds": elapsed,
        }
        if request_id is not None:
            done["request_id"] = request_id
        yield done

    # -------------------------------------------------------------- observation
    def health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": time.time() - self.stats.started,
            "in_flight": self.in_flight,
        }

    def stats_payload(self) -> Dict[str, Any]:
        payload = self._server.describe()
        payload["service"] = self.stats.as_dict()
        payload["max_batch"] = self.max_batch
        payload["max_queue"] = self.max_queue
        payload["request_timeout"] = self.request_timeout
        return payload

    # ---------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close the engine server (dispatcher and worker pool included)."""
        self._server.close()


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's :class:`MotifService`.

    Connections are HTTP/1.1 **persistent**: every response carries either a
    ``Content-Length`` or chunked transfer framing, so a client can reuse
    one connection across many calls (``ServiceClient`` does). ``timeout``
    bounds how long an idle keep-alive connection may sit between requests
    before its handler thread reaps it. The exceptions that must close: a
    429 rejection happens *before* the request body is read, so the
    connection is desynchronized and is closed explicitly.
    """

    protocol_version = "HTTP/1.1"
    server_version = f"repro-mochy/{__version__}"

    #: Idle keep-alive / read timeout (seconds) per connection.
    timeout = 60.0

    # ------------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self._drop_connection():
            return
        service = self.server.service
        if self.path == "/v1/health":
            self._send_json(200, service.health())
        elif self.path == "/v1/stats":
            self._send_json(200, service.stats_payload())
        elif self.path == "/v1/metrics":
            self._send_text(200, obs_metrics.render(), METRICS_CONTENT_TYPE)
        else:
            self._send_json(404, _not_found(self.path))

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self._drop_connection():
            return
        service = self.server.service
        if self.path not in ("/v1/batch", "/v1/evolve"):
            self._send_json(404, _not_found(self.path))
            return
        # The trace id for this request: the client's X-Request-Id when it
        # sent one (ServiceClient always does), otherwise minted here. Bound
        # as a contextvar for the whole request so every layer underneath —
        # parsing, dispatch, engines, store tiers, structured events — sees
        # it without threading it through signatures.
        self.request_id = self.headers.get(REQUEST_ID_HEADER) or new_request_id()
        with trace(self.request_id):
            try:
                with service.track_in_flight():
                    try:
                        parse_started = time.perf_counter()
                        body = self._read_body()
                        if self.path == "/v1/evolve":
                            source, evolve_spec = service.parse_evolve(body)
                        else:
                            requests = service.parse_batch(body)
                        STAGE_SECONDS.observe(
                            time.perf_counter() - parse_started, stage="parse"
                        )
                    except RequestRejected as error:
                        service.stats.count("batches_rejected")
                        ADMISSION_REJECTIONS_TOTAL.inc(reason=error.error_type)
                        # The body was (at least partly) consumed or found
                        # malformed; close so a confused client cannot
                        # desynchronize the connection.
                        self._send_json(error.status, error.payload, error=error)
                        return
                    if self.path == "/v1/evolve":
                        self._stream_evolve(service, source, evolve_spec)
                    else:
                        self._stream_batch(service, requests)
            except RequestRejected as error:
                # Admission refused the batch before its body was read:
                # answer 429 + Retry-After and close (the unread body is
                # still on the wire, so this connection cannot be reused).
                service.stats.count("batches_rejected")
                self._send_json(error.status, error.payload, error=error)

    # ------------------------------------------------------------------ helpers
    def _drop_connection(self) -> bool:
        """Chaos hook: an armed ``server.drop_connection`` fault makes the
        handler hang up without writing a byte, exercising client retries."""
        if faults.denied("server.drop_connection", key=self.path):
            self.close_connection = True
            return True
        return False

    def _read_body(self) -> bytes:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise RequestRejected(
                411, "LengthRequired", "a Content-Length header is required"
            )
        try:
            length = int(length_header)
        except ValueError:
            raise RequestRejected(
                400, "MalformedBody", f"invalid Content-Length {length_header!r}"
            ) from None
        if length < 0:
            raise RequestRejected(
                400, "MalformedBody", f"invalid Content-Length {length_header!r}"
            )
        if length > MAX_BODY_BYTES:
            raise RequestRejected(
                413, "BodyTooLarge", f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        return self.rfile.read(length)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        error: Optional[RequestRejected] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        request_id = getattr(self, "request_id", None)
        if request_id is not None:
            self.send_header(REQUEST_ID_HEADER, request_id)
        if error is not None:
            if error.retry_after is not None:
                self.send_header("Retry-After", str(error.retry_after))
            # Rejections may leave an unread body on the wire; close rather
            # than let the next request parse it as garbage.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)
        HTTP_REQUESTS_TOTAL.inc(route=_route_of(self.path), status=str(status))

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        HTTP_REQUESTS_TOTAL.inc(route=_route_of(self.path), status=str(status))

    def _stream_batch(
        self, service: MotifService, requests: List[ServeRequest]
    ) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header(REQUEST_ID_HEADER, self.request_id)
        self.end_headers()
        stream_started = time.perf_counter()
        try:
            for record in service.stream(requests, request_id=self.request_id):
                self._write_chunk(json.dumps(record) + "\n")
            self._write_last_chunk()
            STAGE_SECONDS.observe(
                time.perf_counter() - stream_started, stage="stream"
            )
            HTTP_REQUESTS_TOTAL.inc(route="/v1/batch", status="200")
        except (BrokenPipeError, ConnectionResetError):
            # The client went away mid-stream; nothing left to tell it.
            LOGGER.debug("client disconnected mid-stream")
        except Exception as error:
            # A failure the capture layer could not isolate (e.g. the worker
            # pool closed by a drain timeout). Terminate the stream with an
            # explicit abort record rather than silent truncation.
            LOGGER.exception("batch stream aborted")
            try:
                self._write_chunk(
                    json.dumps(
                        {
                            "status": "aborted",
                            "error": {
                                "type": type(error).__name__,
                                "message": str(error),
                                "retryable": False,
                            },
                        }
                    )
                    + "\n"
                )
                self._write_last_chunk()
            except OSError:
                pass

    def _stream_evolve(
        self, service: MotifService, source: str, spec: EvolveSpec
    ) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header(REQUEST_ID_HEADER, self.request_id)
        self.end_headers()
        stream_started = time.perf_counter()
        try:
            for record in service.stream_evolve(
                source, spec, request_id=self.request_id
            ):
                self._write_chunk(json.dumps(record) + "\n")
            self._write_last_chunk()
            STAGE_SECONDS.observe(
                time.perf_counter() - stream_started, stage="stream"
            )
            HTTP_REQUESTS_TOTAL.inc(route="/v1/evolve", status="200")
        except (BrokenPipeError, ConnectionResetError):
            LOGGER.debug("client disconnected mid-stream")
        except Exception as error:
            # stream_evolve converts chain failures to wire records itself,
            # so reaching here means the transport layer broke mid-write.
            LOGGER.exception("evolve stream aborted")
            try:
                self._write_chunk(
                    json.dumps(
                        {
                            "status": "aborted",
                            "error": {
                                "type": type(error).__name__,
                                "message": str(error),
                                "retryable": False,
                            },
                        }
                    )
                    + "\n"
                )
                self._write_last_chunk()
            except OSError:
                pass

    def _write_chunk(self, data: str) -> None:
        payload = data.encode("utf-8")
        self.wfile.write(f"{len(payload):X}\r\n".encode("ascii"))
        self.wfile.write(payload)
        self.wfile.write(b"\r\n")
        # Flush per record: incremental arrival is the point of the stream.
        self.wfile.flush()

    def _write_last_chunk(self) -> None:
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        # Structured access log on the repro namespace: one JSON line per
        # request at DEBUG (silent by default; `serve --log-level debug`
        # surfaces it), carrying the bound trace id when one is set.
        log_event(
            LOGGER,
            "http.access",
            client=self.address_string(),
            line=format % args,
        )


class MotifHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`MotifService`.

    Handler threads are daemons so a drain timeout can never wedge process
    exit; graceful shutdown is explicit (:func:`shutdown_gracefully`).
    """

    daemon_threads = True

    def __init__(self, address, service: MotifService) -> None:
        super().__init__(address, _ServiceHandler)
        self.service = service

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful after binding port 0)."""
        return self.server_address[1]


def build_server(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    store: Union[ArtifactStore, bool, None] = True,
    workers: int = 1,
    backend: Optional[str] = None,
    max_engines: int = 8,
    max_batch: int = DEFAULT_MAX_BATCH,
    max_queue: int = DEFAULT_MAX_QUEUE,
    request_timeout: Optional[float] = None,
    registry: Optional[DatasetRegistry] = None,
) -> MotifHTTPServer:
    """Construct the HTTP service over a fresh engine server.

    ``workers``/``backend`` choose the **persistent worker pool** at
    startup: ``backend=None`` picks ``"thread"`` when ``workers > 1`` and
    plain serial execution otherwise; ``"serial"`` forces serial execution
    regardless of ``workers``. Thread and process pools are opened once and
    reused across every batch the service ever serves. ``port=0`` binds a
    free port (read it back from ``server.port``).

    ``max_queue`` bounds concurrently in-flight batches (429 beyond it) and
    ``request_timeout`` bounds each batch's wall-clock seconds (per-unit
    ``UnitTimeout`` records beyond it; ``None`` disables the deadline) —
    see the module docstring's overload and failure behavior.
    """
    if backend is not None and backend not in SERVE_BACKENDS:
        raise SpecError(
            f"backend must be one of {SERVE_BACKENDS} (or None), got {backend!r}"
        )
    if isinstance(workers, bool) or not isinstance(workers, int) or workers <= 0:
        raise SpecError(f"workers must be a positive integer, got {workers!r}")
    pool: Optional[WorkerPool] = None
    if backend is None:
        backend = SERVE_BACKEND_SERIAL if workers == 1 else SERVE_BACKEND_THREAD
    if backend != SERVE_BACKEND_SERIAL:
        pool = WorkerPool(backend, workers)
    engine_server = EngineServer(
        store=store, registry=registry, max_engines=max_engines, pool=pool
    )
    service = MotifService(
        engine_server,
        max_batch=max_batch,
        max_queue=max_queue,
        request_timeout=request_timeout,
    )
    return MotifHTTPServer((host, port), service)


def shutdown_gracefully(
    server: MotifHTTPServer, drain_seconds: float = DEFAULT_DRAIN_SECONDS
) -> bool:
    """Drain and close the server; ``True`` when no batch was abandoned.

    Stops accepting connections, waits up to *drain_seconds* for in-flight
    batches to finish streaming, then closes the listening socket and the
    engine server (worker pool included). Handler threads are daemons, so a
    batch still running after the timeout cannot block process exit — it is
    abandoned and the function returns ``False``.
    """
    server.shutdown()
    deadline = time.monotonic() + max(0.0, drain_seconds)
    drained = True
    while server.service.in_flight > 0:
        if time.monotonic() >= deadline:
            drained = False
            LOGGER.warning(
                "drain timeout: abandoning %d in-flight batch(es)",
                server.service.in_flight,
            )
            break
        time.sleep(0.05)
    server.server_close()
    server.service.close()
    return drained


def run(
    server: MotifHTTPServer,
    drain_seconds: float = DEFAULT_DRAIN_SECONDS,
    install_signal_handlers: bool = True,
    announce=print,
) -> bool:
    """Serve until SIGTERM/SIGINT, then drain gracefully; blocks the caller.

    Announces the bound address on stdout (one line, flushed) so wrappers —
    the CI smoke job, shell scripts — can wait for readiness. Returns
    :func:`shutdown_gracefully`'s drained flag.
    """
    stop = threading.Event()

    def _signal_stop(signum, frame) -> None:
        LOGGER.info("received signal %d; draining", signum)
        stop.set()

    previous = {}
    if install_signal_handlers:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _signal_stop)
    loop = threading.Thread(
        target=server.serve_forever, name="repro-http", daemon=True
    )
    loop.start()
    if announce is not None:
        announce(
            f"serving on http://{server.host}:{server.port} "
            f"(POST /v1/batch, GET /v1/health, GET /v1/stats, GET /v1/metrics)"
        )
        sys.stdout.flush()
    try:
        stop.wait()
    finally:
        drained = shutdown_gracefully(server, drain_seconds=drain_seconds)
        loop.join(timeout=5.0)
        if install_signal_handlers:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
    return drained
