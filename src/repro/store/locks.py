"""Interprocess file locking for the artifact store's write paths.

The store's per-entry writes are already atomic (unique temp file +
``os.replace``), but atomicity of *single* files is not enough once several
workers persist into one directory: an entry is a payload/sidecar **pair**
(the sidecar carries the payload's checksum), and the manifest plus the
:meth:`~repro.store.ArtifactStore.gc` compaction pass walk and rewrite many
files. :class:`FileLock` serializes those multi-file critical sections across
processes so the last writer wins with a *consistent* pair, instead of one
writer's sidecar referencing another writer's payload.

The lock is advisory and deliberately forgiving: callers ask for it with a
bounded timeout and **degrade** when they cannot get it (the store falls back
to its memory tier, never blocking or breaking the computation it caches).
``fcntl.flock`` is used where available (POSIX); elsewhere an
``O_CREAT | O_EXCL`` lockfile with stale-age breaking stands in, so the module
imports everywhere without extra dependencies.

Within one process the lock is reentrant *per instance* and thread-safe: two
threads sharing one :class:`~repro.store.ArtifactStore` serialize on an
internal :class:`threading.RLock` before touching the file, while two store
instances (or two processes) contend on the file itself.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Optional, Union

from repro.store import faults

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Default time budget for acquiring a lock before the caller degrades.
DEFAULT_TIMEOUT = 5.0

#: Sleep between non-blocking acquisition attempts.
_POLL_INTERVAL = 0.005

#: Age (seconds) after which a fallback lockfile is considered abandoned by a
#: dead process and broken. Only used when ``fcntl`` is unavailable —
#: ``flock`` locks vanish with their process automatically.
_STALE_LOCKFILE_AGE = 60.0


class FileLock:
    """Advisory interprocess lock on a single lock file.

    Usage::

        lock = FileLock(directory / ".store.lock")
        if lock.acquire(timeout=1.0):
            try:
                ...  # multi-file critical section
            finally:
                lock.release()
        else:
            ...  # contention: degrade instead of blocking

    ``acquire``/``release`` nest **per thread**: the thread holding the lock
    reacquires immediately and only its outermost release drops the file
    lock. *Other* threads of the same instance serialize on an internal
    lock exactly like other processes do on the file — their ``acquire``
    waits out the timeout and returns ``False`` if the holder keeps it.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._thread_lock = threading.RLock()
        self._depth = 0
        self._fd: Optional[int] = None

    @property
    def path(self) -> Path:
        """Location of the lock file."""
        return self._path

    @property
    def held(self) -> bool:
        """Whether this instance currently holds the lock."""
        return self._depth > 0

    def acquire(self, timeout: float = DEFAULT_TIMEOUT) -> bool:
        """Try to take the lock within *timeout* seconds; ``False`` on failure.

        Never raises for contention or filesystem trouble — an unobtainable
        lock reports ``False`` so the caller can degrade gracefully.
        """
        if faults.denied("store.lock_acquire", key=str(self._path)):
            return False  # injected contention: behave exactly like a timeout
        deadline = time.monotonic() + max(0.0, timeout)
        # Serialize threads of this instance first; the remaining budget then
        # goes to the interprocess attempt.
        budget = max(0.0, deadline - time.monotonic())
        if not self._thread_lock.acquire(timeout=budget if budget > 0 else 0.001):
            return False
        if self._depth > 0:  # reentrant: already holding the file lock
            self._depth += 1
            return True
        try:
            while True:
                if self._try_lock_file():
                    self._depth = 1
                    return True
                if time.monotonic() >= deadline:
                    self._thread_lock.release()
                    return False
                time.sleep(_POLL_INTERVAL)
        except BaseException:
            self._thread_lock.release()
            raise

    def release(self) -> None:
        """Release one level of the lock (outermost level unlocks the file)."""
        if self._depth == 0:
            raise RuntimeError(f"release() of unheld lock {self._path}")
        self._depth -= 1
        if self._depth == 0:
            self._unlock_file()
        self._thread_lock.release()

    def __enter__(self) -> "FileLock":
        if not self.acquire():
            raise TimeoutError(f"could not acquire lock {self._path}")
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    # --------------------------------------------------------------- internal
    def _try_lock_file(self) -> bool:
        """One non-blocking attempt at the OS-level lock."""
        if fcntl is not None:
            try:
                fd = os.open(self._path, os.O_CREAT | os.O_RDWR, 0o644)
            except OSError:
                return False
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                os.close(fd)
                return False
            self._fd = fd
            return True
        # Fallback: atomic-create lockfile, breaking ones left by dead owners.
        try:
            fd = os.open(self._path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644)
        except FileExistsError:
            self._break_stale_lockfile()
            return False
        except OSError:
            return False
        try:
            os.write(fd, str(os.getpid()).encode("ascii"))
        except OSError:  # pragma: no cover - contents are advisory only
            pass
        self._fd = fd
        return True

    def _unlock_file(self) -> None:
        fd, self._fd = self._fd, None
        if fd is None:  # pragma: no cover - defensive
            return
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - unlock best-effort
                pass
            finally:
                os.close(fd)
            return
        os.close(fd)
        try:
            self._path.unlink()
        except OSError:  # pragma: no cover - already removed
            pass

    def _break_stale_lockfile(self) -> None:  # pragma: no cover - fallback path
        try:
            age = time.time() - self._path.stat().st_mtime
        except OSError:
            return
        if age > _STALE_LOCKFILE_AGE:
            try:
                self._path.unlink()
            except OSError:
                pass
