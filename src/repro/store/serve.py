"""Batched serving driver: many specs over many datasets, one shared store.

:class:`EngineServer` is the warm-start serving path on top of the engine
and the artifact store. It keeps a bounded pool of :class:`MotifEngine`
workers (one per dataset, LRU-evicted) that all share a single
:class:`~repro.store.ArtifactStore`, so an evicted engine's work survives in
the store and the next engine for that dataset warm-starts. A batch
submitted through :meth:`EngineServer.submit` is deduplicated — identical
``(dataset, spec)`` pairs are computed once and fanned out to every
requesting slot — and returns the same typed results
(:class:`CountResult` etc.) the engine does, one per request, in request
order.

Execution is pluggable (:mod:`repro.store.executors`): the default
``serial`` backend runs units in the calling thread; ``thread`` overlaps
units of a batch on a thread pool over the shared engine pool; ``process``
ships CSR arrays + spec dicts to worker processes for real CPU parallelism,
with every worker persisting into the same store directory (made safe by
the store's interprocess write locking). Parallel result *payloads* —
counts, profiles, comparison rows — are **bit-identical** to serial ones
for exact and integer-seeded specs; cache-provenance metadata
(``from_cache``/``cache_tier``) can differ when units of one batch share
work, because which unit computes first is scheduling-dependent.
:meth:`EngineServer.submit_async` is the async front door: it dispatches a
batch to a background thread and returns a :class:`BatchFuture` that is both
a concurrent future and awaitable, so independent batches overlap.

>>> from repro.api import CountSpec, ProfileSpec
>>> from repro.store import ArtifactStore
>>> from repro.store.serve import EngineServer, ServeRequest
>>> server = EngineServer(store=ArtifactStore("/tmp/repro-store"))
>>> results = server.submit([
...     ServeRequest("email-enron-like", CountSpec()),
...     ServeRequest("email-enron-like", CountSpec()),          # deduplicated
...     ServeRequest("contact-primary-like", ProfileSpec(num_random=3, seed=0)),
... ], workers=4, backend="process")
>>> future = server.submit_async([("tags-math-like", CountSpec())])
>>> future.result()[0].counts.total()  # doctest: +SKIP
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.real_vs_random import RealVsRandomReport
from repro.api.config import (
    CompareSpec,
    CountSpec,
    EvolveSpec,
    ProfileSpec,
    VarianceSpec,
    spec_from_dict,
    spec_to_dict,
)
from repro.api.engine import MotifEngine
from repro.api.registry import DEFAULT_REGISTRY, DatasetRegistry
from repro.api.results import (
    CompareResult,
    CountResult,
    EngineResult,
    EvolutionSnapshot,
    ProfileResult,
)
from repro.exceptions import ServeError, SpecError
from repro.fastcore.backend import get_backend
from repro.hypergraph.builders import TemporalHypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.motifs.counts import MotifCounts
from repro.obs import metrics as obs_metrics
from repro.obs.trace import current_request_id, log_event
from repro.store.artifacts import ArtifactStore, resolve_store
from repro.store.executors import (
    FAILURE_TIMEOUT,
    FAILURE_WORKER_CRASH,
    ServeUnit,
    UnitFailure,
    WorkerPayload,
    WorkerPool,
    dispatch_spec,
    ensure_servable_spec,
    resolve_serve_executor,
)
from repro.utils.logging import get_logger

#: Specs the server knows how to dispatch (predict needs temporal data and a
#: classifier grid — it stays an engine-level workflow for now). Evolution
#: chains are deliberately *not* batch-servable: they stream one record per
#: snapshot through :meth:`EngineServer.evolve_stream` / ``POST /v1/evolve``.
ServeSpec = Union[CountSpec, ProfileSpec, CompareSpec, VarianceSpec]
ServeSource = Union[str, Path, Hypergraph, TemporalHypergraph]

#: Bound on concurrently-dispatched async batches per server.
DEFAULT_ASYNC_BATCHES = 4

LOGGER = get_logger(__name__)

SERVE_REQUESTS_TOTAL = obs_metrics.counter(
    "repro_serve_requests_total", "Request slots submitted across all batches."
)
SERVE_DEDUPLICATED_TOTAL = obs_metrics.counter(
    "repro_serve_deduplicated_total",
    "Request slots satisfied by another slot's computation (per-batch dedup).",
)
SERVE_BATCHES_TOTAL = obs_metrics.counter(
    "repro_serve_batches_total", "Batches submitted to the engine server."
)
SERVE_IN_FLIGHT = obs_metrics.gauge(
    "repro_serve_in_flight_batches", "Batches currently executing."
)
SERVE_UNIT_FAILURES_TOTAL = obs_metrics.counter(
    "repro_serve_unit_failures_total",
    "Units resolved to structured failure records, by error type.",
    ("type",),
)
SERVE_UNIT_SECONDS = obs_metrics.histogram(
    "repro_serve_unit_seconds",
    "Engine-local execution latency of one unit (serial/thread backends), "
    "by spec type.",
    ("spec",),
)
SERVE_CACHE_TIER_TOTAL = obs_metrics.counter(
    "repro_serve_cache_tier_total",
    'Unique-unit outcomes by cache provenance ("engine"/"memory"/"disk" '
    'hits, "computed" for cold work).',
    ("tier",),
)
SERVE_ENGINES_BUILT_TOTAL = obs_metrics.counter(
    "repro_serve_engines_built_total", "Worker engines constructed for the pool."
)
SERVE_ENGINES_EVICTED_TOTAL = obs_metrics.counter(
    "repro_serve_engines_evicted_total", "Worker engines LRU-evicted from the pool."
)


def _observe_outcome(outcome: Any) -> None:
    """Record one unique unit's cache provenance in the registry."""
    tier = None
    if getattr(outcome, "from_cache", False):
        tier = getattr(outcome, "cache_tier", None)
    SERVE_CACHE_TIER_TOTAL.inc(tier=tier or "computed")


@dataclass(frozen=True)
class ServeRequest:
    """One unit of serving work: a dataset source plus a typed spec."""

    source: ServeSource
    spec: ServeSpec


def request_from_dict(mapping: Mapping[str, Any]) -> ServeRequest:
    """Build a :class:`ServeRequest` from its wire-format record.

    The record is one JSON object with a ``source`` (dataset name or file
    path) and either a nested ``spec`` object (:func:`repro.api.spec_from_dict`
    form) or the spec's fields inlined beside ``source``. This is the single
    request parser shared by the ``serve-batch`` CLI's JSONL files and the
    HTTP service's ``POST /v1/batch`` bodies, so the two front doors cannot
    drift in what they accept. Raises :class:`SpecError` on malformed
    records, unknown spec types/fields and non-servable specs — all before
    any dataset is touched.
    """
    if not isinstance(mapping, Mapping):
        raise SpecError(
            f"a request record must be a JSON object, got "
            f"{type(mapping).__name__}"
        )
    record = dict(mapping)
    source = record.pop("source", None)
    if not isinstance(source, str) or not source:
        raise SpecError('missing or invalid "source"')
    spec_mapping = record.pop("spec", None)
    if spec_mapping is None:
        spec_mapping = record  # terse form: spec fields beside "source"
    elif record:
        raise SpecError(f'unexpected keys {sorted(record)} next to "spec"')
    spec = spec_from_dict(spec_mapping)
    ensure_servable_spec(spec)
    return ServeRequest(source, spec)


@dataclass
class ServeStats:
    """Counters over the lifetime of one :class:`EngineServer`.

    ``in_flight`` is the number of batches currently executing (submitted
    and not yet fully resolved — streamed batches stay in flight until their
    last unit is yielded); ``unit_failures`` counts units whose failure was
    captured for an error-tolerant stream rather than raised.
    ``unit_timeouts`` and ``worker_crashes`` break two transient failure
    classes out of that total: units that exceeded their batch deadline and
    units lost to a dead process worker (both also counted in
    ``unit_failures``).
    """

    requests: int = 0
    unique: int = 0
    deduplicated: int = 0
    engines_built: int = 0
    engines_evicted: int = 0
    batches: int = 0
    in_flight: int = 0
    unit_failures: int = 0
    unit_timeouts: int = 0
    worker_crashes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "unique": self.unique,
            "deduplicated": self.deduplicated,
            "engines_built": self.engines_built,
            "engines_evicted": self.engines_evicted,
            "batches": self.batches,
            "in_flight": self.in_flight,
            "unit_failures": self.unit_failures,
            "unit_timeouts": self.unit_timeouts,
            "worker_crashes": self.worker_crashes,
        }


class BatchFuture:
    """Handle to one asynchronously-submitted batch.

    Wraps the dispatcher's :class:`concurrent.futures.Future` and is
    additionally *awaitable*, so the same handle works from plain threads
    (``future.result()``) and from ``asyncio`` code (``await future``).
    Resolves to the batch's ``List[EngineResult]`` in request order, or
    raises whatever the batch raised.
    """

    def __init__(self, future: "Future[List[EngineResult]]") -> None:
        self._future = future

    def result(self, timeout: Optional[float] = None) -> List[EngineResult]:
        """Block until the batch finishes; its results in request order."""
        return self._future.result(timeout)

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The batch's exception, or ``None`` once it completed cleanly."""
        return self._future.exception(timeout)

    def done(self) -> bool:
        """Whether the batch has finished (successfully or not)."""
        return self._future.done()

    def cancel(self) -> bool:
        """Try to cancel a batch that has not started executing yet."""
        return self._future.cancel()

    def add_done_callback(self, callback) -> None:
        """Invoke *callback* (with this future's inner future) on completion."""
        self._future.add_done_callback(callback)

    def __await__(self):
        import asyncio

        return asyncio.wrap_future(self._future).__await__()

    def __repr__(self) -> str:
        state = "done" if self._future.done() else "pending"
        return f"BatchFuture({state})"


class EngineServer:
    """Shared-store engine pool serving batched count/profile/compare work.

    Parameters
    ----------
    store:
        The artifact cache shared by every worker engine: ``True`` (default)
        uses the process-wide default store, ``None``/``False`` disables
        store consultation, an :class:`~repro.store.ArtifactStore` is used
        as given.
    registry:
        Dataset registry resolving string/path sources (default: the
        process registry).
    max_engines:
        Bound on the worker-engine pool; least-recently-used engines are
        evicted, their computed artifacts surviving in the shared store.
    async_batches:
        Bound on batches dispatched concurrently via :meth:`submit_async`.
    pool:
        An optional persistent :class:`~repro.store.executors.WorkerPool`.
        When given, batches submitted without explicit ``workers``/``backend``
        arguments run on the pool's long-lived workers — the reuse a
        continuously-serving front-end needs — and :meth:`close` shuts the
        pool down with the server.

    The server is thread-safe: overlapping async batches (and the thread
    backend's workers) share the engine pool under a lock, and each engine
    executes one unit at a time so its internal caches never race.
    """

    def __init__(
        self,
        store: Union[ArtifactStore, bool, None] = True,
        registry: Optional[DatasetRegistry] = None,
        max_engines: int = 8,
        async_batches: int = DEFAULT_ASYNC_BATCHES,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        if max_engines <= 0:
            raise SpecError(f"max_engines must be positive, got {max_engines}")
        if async_batches <= 0:
            raise SpecError(f"async_batches must be positive, got {async_batches}")
        if pool is not None and not isinstance(pool, WorkerPool):
            raise SpecError(
                f"pool must be a WorkerPool (or None), got {type(pool).__name__}"
            )
        self._store = resolve_store(store)
        self._registry = DEFAULT_REGISTRY if registry is None else registry
        self._max_engines = int(max_engines)
        self._async_batches = int(async_batches)
        self._worker_pool = pool
        self._engines: "OrderedDict[object, MotifEngine]" = OrderedDict()
        self._engine_locks: Dict[object, threading.Lock] = {}
        self._pool_lock = threading.RLock()
        self._dispatcher: Optional[ThreadPoolExecutor] = None
        self.stats = ServeStats()

    # -------------------------------------------------------------- properties
    @property
    def store(self) -> Optional[ArtifactStore]:
        """The shared artifact store (``None`` when disabled)."""
        return self._store

    @property
    def num_engines(self) -> int:
        """Worker engines currently resident in the pool."""
        with self._pool_lock:
            return len(self._engines)

    @property
    def worker_pool(self) -> Optional[WorkerPool]:
        """The persistent worker pool (``None`` without one)."""
        return self._worker_pool

    # ----------------------------------------------------------------- serving
    def _resolve_executor(self, workers: Optional[int], backend: Optional[str]):
        """The executor serving one batch.

        ``workers=None`` means "the server's choice": the persistent pool
        when one is configured (and *backend* is omitted or matches it),
        serial execution otherwise. An explicit ``workers`` count always
        runs on a per-batch ephemeral pool of exactly that width — callers
        capping concurrency must get the cap they asked for, not the
        persistent pool's.
        """
        if workers is None:
            if self._worker_pool is not None and backend in (
                None,
                self._worker_pool.backend,
            ):
                return self._worker_pool.serve_executor()
            workers = 1
        return resolve_serve_executor(backend, workers)

    def _normalize_batch(
        self,
        requests: Iterable[Union[ServeRequest, Tuple[ServeSource, ServeSpec]]],
    ):
        """Snapshot a batch; its request keys and deduplicated unique work."""
        normalized = [
            ServeRequest(*request) if isinstance(request, tuple) else request
            for request in requests
        ]
        keys = [
            (self._source_key(request.source), request.spec)
            for request in normalized
        ]
        unique: "OrderedDict[object, ServeRequest]" = OrderedDict()
        for request, key in zip(normalized, keys):
            if key not in unique:
                unique[key] = request
        return normalized, keys, unique

    def _begin_batch(self, num_requests: int, num_unique: int) -> None:
        with self._pool_lock:
            self.stats.batches += 1
            self.stats.requests += num_requests
            self.stats.unique += num_unique
            self.stats.deduplicated += num_requests - num_unique
            self.stats.in_flight += 1
        SERVE_BATCHES_TOTAL.inc()
        SERVE_REQUESTS_TOTAL.inc(num_requests)
        SERVE_DEDUPLICATED_TOTAL.inc(num_requests - num_unique)
        SERVE_IN_FLIGHT.inc()
        log_event(
            LOGGER,
            "serve.batch_begin",
            requests=num_requests,
            unique=num_unique,
        )

    def _end_batch(self) -> None:
        with self._pool_lock:
            self.stats.in_flight -= 1
        SERVE_IN_FLIGHT.dec()

    def submit(
        self,
        requests: Iterable[Union[ServeRequest, Tuple[ServeSource, ServeSpec]]],
        workers: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> List[EngineResult]:
        """Serve a batch, one typed result per request, in request order.

        Identical ``(dataset, spec)`` pairs are computed once per batch;
        duplicate slots receive a defensive copy of the first result. Plain
        ``(source, spec)`` tuples are accepted alongside
        :class:`ServeRequest` objects.

        Parameters
        ----------
        workers:
            How many units of the deduplicated batch may run concurrently.
            ``None`` (default) runs on the server's persistent pool when one
            is configured, serially otherwise; an explicit count runs on an
            ephemeral per-batch pool of exactly that width.
        backend:
            ``"serial"`` (default for one worker), ``"thread"`` (default for
            several) or ``"process"`` — see :mod:`repro.store.executors`.
            Results are bit-identical across backends for exact and
            integer-seeded specs.
        """
        executor = self._resolve_executor(workers, backend)
        normalized, keys, unique = self._normalize_batch(requests)
        self._begin_batch(len(normalized), len(unique))
        try:
            units = [self._make_unit(request) for request in unique.values()]
            outcomes = executor.map(units)
        finally:
            self._end_batch()
        for outcome in outcomes:
            _observe_outcome(outcome)
        computed = dict(zip(unique.keys(), outcomes))
        return [_fan_out(computed[key]) for key in keys]

    def submit_stream(
        self,
        requests: Iterable[Union[ServeRequest, Tuple[ServeSource, ServeSpec]]],
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        capture_errors: bool = False,
        timeout: Optional[float] = None,
    ) -> Iterator[Tuple[int, Union[EngineResult, UnitFailure]]]:
        """Serve a batch incrementally: yield ``(request index, outcome)``.

        Outcomes arrive in **completion order** — the moment a unit finishes,
        its result is yielded for every request slot that deduplicated onto
        it (each slot getting its own defensive copy) — which is what lets a
        network front-end stream a batch's fast units while slow ones are
        still computing. The result *payloads* are bit-identical to
        :meth:`submit`'s for exact and integer-seeded specs; only arrival
        order differs.

        With ``capture_errors=True`` a failing unit resolves to a
        :class:`~repro.store.executors.UnitFailure` for its slots instead of
        aborting the whole batch — the error-isolation mode the HTTP service
        runs in. Without it, the first failure raises (matching
        :meth:`submit`).

        *timeout* bounds the whole batch in seconds: units still unfinished
        when the budget runs out resolve to structured ``UnitTimeout``
        failure records while already-finished units stream normally — the
        batch degrades per-unit instead of hanging. Units lost to a dead
        process worker likewise resolve to ``WorkerCrashed`` records, and
        the pool respawns for the next batch. Both record types are
        transient, so they are marked ``retryable`` for clients; without
        ``capture_errors`` they raise :class:`~repro.exceptions.ServeError`
        instead (the stream has no other way to report a unit it lost).
        """
        executor = self._resolve_executor(workers, backend)
        if timeout is not None and timeout <= 0:
            raise SpecError(f"timeout must be positive or None, got {timeout!r}")
        normalized, keys, unique = self._normalize_batch(requests)
        slots: Dict[object, List[int]] = {}
        for index, key in enumerate(keys):
            slots.setdefault(key, []).append(index)
        unit_keys = list(unique.keys())
        units = [
            self._make_unit(request, capture=capture_errors)
            for request in unique.values()
        ]
        deadline = None if timeout is None else time.monotonic() + timeout
        self._begin_batch(len(normalized), len(unique))
        try:
            for unit_index, outcome in executor.map_stream(units, deadline=deadline):
                if isinstance(outcome, UnitFailure):
                    with self._pool_lock:
                        self.stats.unit_failures += 1
                        if outcome.error_type == FAILURE_TIMEOUT:
                            self.stats.unit_timeouts += 1
                        elif outcome.error_type == FAILURE_WORKER_CRASH:
                            self.stats.worker_crashes += 1
                    SERVE_UNIT_FAILURES_TOTAL.inc(type=outcome.error_type)
                    log_event(
                        LOGGER,
                        "serve.unit_failure",
                        unit=units[unit_index].label,
                        error_type=outcome.error_type,
                        retryable=outcome.retryable,
                    )
                    if not capture_errors:
                        # Deadline/crash records exist even without capture
                        # mode (the executor cannot raise them usefully from
                        # a stream); surface them as the batch's failure.
                        raise ServeError(
                            f"unit {units[unit_index].label} was lost: "
                            f"[{outcome.error_type}] {outcome.message}"
                        )
                    for slot in slots[unit_keys[unit_index]]:
                        yield slot, outcome
                else:
                    _observe_outcome(outcome)
                    for slot in slots[unit_keys[unit_index]]:
                        yield slot, _fan_out(outcome)
        finally:
            self._end_batch()

    def submit_async(
        self,
        requests: Iterable[Union[ServeRequest, Tuple[ServeSource, ServeSpec]]],
        workers: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> BatchFuture:
        """Dispatch a batch without blocking; independent batches overlap.

        The request iterable is snapshotted eagerly (so generators are safe)
        and the batch runs on a background dispatcher thread with exactly
        the :meth:`submit` semantics — same dedup, ordering and backends.
        Returns a :class:`BatchFuture` that is also awaitable from asyncio.

        For *overlapping* async batches prefer the ``thread`` backend: the
        ``process`` backend forks from this (now multi-threaded) process,
        which is safe only up to the usual fork-with-threads caveats on
        Linux Pythons before 3.14 (see
        :class:`~repro.store.executors.ProcessExecutor`).
        """
        snapshot = [
            ServeRequest(*request) if isinstance(request, tuple) else request
            for request in requests
        ]
        # Validate executor parameters in the caller, not the dispatcher
        # thread, so bad arguments raise here and now.
        self._resolve_executor(workers, backend)
        with self._pool_lock:
            if self._dispatcher is None:
                self._dispatcher = ThreadPoolExecutor(
                    max_workers=self._async_batches,
                    thread_name_prefix="repro-serve",
                )
            future = self._dispatcher.submit(
                self.submit, snapshot, workers=workers, backend=backend
            )
        return BatchFuture(future)

    def count(
        self,
        sources: Sequence[ServeSource],
        spec: Optional[CountSpec] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> List[CountResult]:
        """Convenience: one count per source with a shared spec."""
        spec = CountSpec() if spec is None else spec
        return self.submit(
            [ServeRequest(source, spec) for source in sources],
            workers=workers,
            backend=backend,
        )

    def warm(
        self,
        sources: Sequence[ServeSource],
        specs: Optional[Sequence[ServeSpec]] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> List[EngineResult]:
        """Pre-populate the shared store (projection + exact counts by default)."""
        specs = [CountSpec()] if specs is None else list(specs)
        return self.submit(
            [ServeRequest(source, spec) for source in sources for spec in specs],
            workers=workers,
            backend=backend,
        )

    def evolve_stream(
        self, source: ServeSource, spec: Optional[EvolveSpec] = None
    ) -> Iterator[EvolutionSnapshot]:
        """Stream an evolution chain's snapshots for one dataset source.

        The spec is validated and the chain resolved *before* the first
        snapshot is yielded (so the HTTP route can turn a bad spec into a
        4xx instead of a torn stream), and the dataset's pooled engine is
        held for the duration of the stream — exactly the one-unit-at-a-time
        contract batch units run under. Warm chains are served straight from
        the shared store's lineage artifacts.
        """
        spec = EvolveSpec() if spec is None else spec
        if not isinstance(spec, EvolveSpec):
            raise SpecError(
                f"evolve_stream needs an EvolveSpec, got {type(spec).__name__}"
            )
        key = self._source_key(source)
        engine = self.engine_for(source)
        lock = self._engine_lock(key)
        with lock:
            iterator = engine.evolve_iter(spec)

        def stream() -> Iterator[EvolutionSnapshot]:
            with lock:
                for snapshot in iterator:
                    yield snapshot

        return stream()

    # ---------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down the async dispatcher (waiting for in-flight batches)
        and the persistent worker pool, when either exists."""
        with self._pool_lock:
            dispatcher, self._dispatcher = self._dispatcher, None
        if dispatcher is not None:
            dispatcher.shutdown(wait=True)
        if self._worker_pool is not None:
            self._worker_pool.close()

    def __enter__(self) -> "EngineServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ engines
    def engine_for(self, source: ServeSource) -> MotifEngine:
        """The pooled worker engine for *source*, created on first use."""
        key = self._source_key(source)
        with self._pool_lock:
            engine = self._engines.get(key)
            if engine is not None:
                self._engines.move_to_end(key)
                return engine
        # Build outside the pool lock: dataset loading can be slow and must
        # not stall unrelated requests. A racing builder for the same key is
        # tolerated; the first insert wins and the loser is discarded.
        store_arg = self._store if self._store is not None else False
        if isinstance(source, (Hypergraph, TemporalHypergraph)):
            engine = MotifEngine(source, store=store_arg)
        else:
            engine = MotifEngine.load(source, registry=self._registry, store=store_arg)
        with self._pool_lock:
            existing = self._engines.get(key)
            if existing is not None:
                self._engines.move_to_end(key)
                return existing
            self._engines[key] = engine
            self.stats.engines_built += 1
            SERVE_ENGINES_BUILT_TOTAL.inc()
            while len(self._engines) > self._max_engines:
                # The evicted engine's lock entry is kept on purpose: a
                # thread may still be executing on the evicted engine, and a
                # rebuilt engine for the same key must serialize against it
                # under the *same* lock. Lock objects are tiny (one per
                # distinct source ever seen), so the map stays bounded by
                # the workload's dataset universe.
                self._engines.popitem(last=False)
                self.stats.engines_evicted += 1
                SERVE_ENGINES_EVICTED_TOTAL.inc()
        return engine

    # ------------------------------------------------------------- observation
    def describe(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of the server: engines, counters, store, pool.

        This is what the HTTP service's ``GET /v1/stats`` serves — engine
        pool occupancy, serving counters (including in-flight batches), the
        shared store's tier hit/miss/contention counters and the persistent
        worker pool's shape.
        """
        with self._pool_lock:
            engines = {
                "resident": len(self._engines),
                "max": self._max_engines,
                "built": self.stats.engines_built,
                "evicted": self.stats.engines_evicted,
            }
            serve = self.stats.as_dict()
        if self._store is None:
            store: Optional[Dict[str, Any]] = None
        else:
            store = {
                "persistent": self._store.persistent,
                "directory": (
                    str(self._store.directory) if self._store.persistent else None
                ),
                "stats": self._store.stats.as_dict(),
                # Shard/level occupancy of the LSM disk tier (None for
                # memory-only stores): per-shard entry and byte counts,
                # L0-vs-L1 record totals, per-kind footprints, policy.
                "occupancy": self._store.occupancy(),
            }
        pool = None if self._worker_pool is None else self._worker_pool.as_dict()
        return {
            "engines": engines,
            "serve": serve,
            "store": store,
            "pool": pool,
            # Deterministic latency summaries (count/sum/p50/p95/p99) of
            # every histogram in the process-wide registry.
            "metrics": obs_metrics.summaries(),
        }

    # ----------------------------------------------------------------- internal
    def _make_unit(self, request: ServeRequest, capture: bool = False) -> ServeUnit:
        label = (
            request.source
            if isinstance(request.source, (str, Path))
            else getattr(request.source, "name", "hypergraph")
        )
        if capture:
            run_local = lambda: self._execute_captured(request)  # noqa: E731
            make_payload = lambda: self._captured_payload(request)  # noqa: E731
        else:
            run_local = lambda: self._execute(request)  # noqa: E731
            make_payload = lambda: self._payload_for(request)  # noqa: E731
        return ServeUnit(
            run_local=run_local,
            make_payload=make_payload,
            label=f"{label}:{type(request.spec).__name__}",
        )

    def _execute(self, request: ServeRequest) -> EngineResult:
        ensure_servable_spec(request.spec)
        key = self._source_key(request.source)
        engine = self.engine_for(request.source)
        # One unit at a time per engine: MotifEngine's internal memo/caches
        # are not thread-safe, and units on *different* engines still overlap.
        with self._engine_lock(key):
            started = time.perf_counter()
            result = dispatch_spec(engine, request.spec)
        SERVE_UNIT_SECONDS.observe(
            time.perf_counter() - started, spec=type(request.spec).__name__
        )
        return result

    def _execute_captured(self, request: ServeRequest):
        try:
            return self._execute(request)
        except Exception as error:
            return UnitFailure.from_exception(error)

    def _captured_payload(self, request: ServeRequest) -> WorkerPayload:
        # Payload materialization resolves the dataset in the parent; in
        # capture mode that failure must reach the unit's slots as a record,
        # not abort the batch, so it rides a pre-failed payload.
        try:
            return self._payload_for(request, capture=True)
        except Exception as error:
            return WorkerPayload.failed(
                dataset=str(request.source),
                failure=UnitFailure.from_exception(error),
                request_id=current_request_id(),
            )

    def _payload_for(
        self, request: ServeRequest, capture: bool = False
    ) -> WorkerPayload:
        ensure_servable_spec(request.spec)
        engine = self.engine_for(request.source)
        hypergraph = engine.hypergraph
        csr = hypergraph.csr()
        store_dir: Optional[str] = None
        if self._store is not None and self._store.persistent:
            store_dir = str(self._store.directory)
        return WorkerPayload(
            edge_ptr=csr.edge_ptr,
            edge_nodes=csr.edge_nodes,
            dataset=hypergraph.name,
            spec=spec_to_dict(request.spec),
            store_dir=store_dir,
            capture=capture,
            # Bind the submitting context's trace id into the shipped form:
            # payloads are materialized on the submitter's thread, so the
            # contextvar is still visible here even though it will not
            # survive the pickle boundary.
            request_id=current_request_id(),
            # Ship the parent's resolved backend: process workers re-read the
            # environment but not set_backend()/use_backend() state.
            kernel_backend=get_backend(),
        )

    def _engine_lock(self, key: object) -> threading.Lock:
        with self._pool_lock:
            lock = self._engine_locks.get(key)
            if lock is None:
                lock = self._engine_locks[key] = threading.Lock()
            return lock

    @staticmethod
    def _source_key(source: ServeSource) -> object:
        if isinstance(source, Hypergraph):
            # Hypergraphs hash/compare by content, so two equal objects
            # share an engine (and therefore its caches).
            return ("hypergraph", source)
        if isinstance(source, TemporalHypergraph):
            return ("temporal", id(source))
        return ("source", str(source))

    def __repr__(self) -> str:
        return (
            f"EngineServer(engines={self.num_engines}/{self._max_engines}, "
            f"store={'on' if self._store is not None else 'off'}, "
            f"requests={self.stats.requests})"
        )


def _fan_out(result: EngineResult) -> EngineResult:
    """Defensively copy a result's mutable payload before sharing it.

    Every slot of a deduplicated batch gets its own count vectors / row
    list, so one caller mutating a returned result cannot leak into another
    caller's copy.
    """
    if isinstance(result, CountResult):
        return replace(result, counts=MotifCounts(result.counts.to_array()))
    if isinstance(result, ProfileResult):
        profile = result.profile
        return replace(
            result,
            profile=type(profile)(
                name=profile.name,
                values=profile.values.copy(),
                significances=profile.significances.copy(),
                real_counts=MotifCounts(profile.real_counts.to_array()),
                random_counts=MotifCounts(profile.random_counts.to_array()),
            ),
        )
    if isinstance(result, CompareResult):
        report = result.report
        return replace(
            result,
            report=RealVsRandomReport(dataset=report.dataset, rows=list(report.rows)),
        )
    return result
