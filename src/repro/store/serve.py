"""Batched serving driver: many specs over many datasets, one shared store.

:class:`EngineServer` is the warm-start serving path on top of the engine
and the artifact store. It keeps a bounded pool of :class:`MotifEngine`
workers (one per dataset, LRU-evicted) that all share a single
:class:`~repro.store.ArtifactStore`, so an evicted engine's work survives in
the store and the next engine for that dataset warm-starts. A batch
submitted through :meth:`EngineServer.submit` is deduplicated — identical
``(dataset, spec)`` pairs are computed once and fanned out to every
requesting slot — and returns the same typed results
(:class:`CountResult` etc.) the engine does, one per request, in request
order.

Execution is pluggable (:mod:`repro.store.executors`): the default
``serial`` backend runs units in the calling thread; ``thread`` overlaps
units of a batch on a thread pool over the shared engine pool; ``process``
ships CSR arrays + spec dicts to worker processes for real CPU parallelism,
with every worker persisting into the same store directory (made safe by
the store's interprocess write locking). Parallel result *payloads* —
counts, profiles, comparison rows — are **bit-identical** to serial ones
for exact and integer-seeded specs; cache-provenance metadata
(``from_cache``/``cache_tier``) can differ when units of one batch share
work, because which unit computes first is scheduling-dependent.
:meth:`EngineServer.submit_async` is the async front door: it dispatches a
batch to a background thread and returns a :class:`BatchFuture` that is both
a concurrent future and awaitable, so independent batches overlap.

>>> from repro.api import CountSpec, ProfileSpec
>>> from repro.store import ArtifactStore
>>> from repro.store.serve import EngineServer, ServeRequest
>>> server = EngineServer(store=ArtifactStore("/tmp/repro-store"))
>>> results = server.submit([
...     ServeRequest("email-enron-like", CountSpec()),
...     ServeRequest("email-enron-like", CountSpec()),          # deduplicated
...     ServeRequest("contact-primary-like", ProfileSpec(num_random=3, seed=0)),
... ], workers=4, backend="process")
>>> future = server.submit_async([("tags-math-like", CountSpec())])
>>> future.result()[0].counts.total()  # doctest: +SKIP
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.real_vs_random import RealVsRandomReport
from repro.api.config import CompareSpec, CountSpec, ProfileSpec, spec_to_dict
from repro.api.engine import MotifEngine
from repro.api.registry import DEFAULT_REGISTRY, DatasetRegistry
from repro.api.results import CompareResult, CountResult, EngineResult, ProfileResult
from repro.exceptions import SpecError
from repro.hypergraph.builders import TemporalHypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.motifs.counts import MotifCounts
from repro.store.artifacts import ArtifactStore, resolve_store
from repro.store.executors import (
    ServeUnit,
    WorkerPayload,
    dispatch_spec,
    ensure_servable_spec,
    resolve_serve_executor,
)

#: Specs the server knows how to dispatch (predict needs temporal data and a
#: classifier grid — it stays an engine-level workflow for now).
ServeSpec = Union[CountSpec, ProfileSpec, CompareSpec]
ServeSource = Union[str, Path, Hypergraph, TemporalHypergraph]

#: Bound on concurrently-dispatched async batches per server.
DEFAULT_ASYNC_BATCHES = 4


@dataclass(frozen=True)
class ServeRequest:
    """One unit of serving work: a dataset source plus a typed spec."""

    source: ServeSource
    spec: ServeSpec


@dataclass
class ServeStats:
    """Counters over the lifetime of one :class:`EngineServer`."""

    requests: int = 0
    unique: int = 0
    deduplicated: int = 0
    engines_built: int = 0
    engines_evicted: int = 0
    batches: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "unique": self.unique,
            "deduplicated": self.deduplicated,
            "engines_built": self.engines_built,
            "engines_evicted": self.engines_evicted,
            "batches": self.batches,
        }


class BatchFuture:
    """Handle to one asynchronously-submitted batch.

    Wraps the dispatcher's :class:`concurrent.futures.Future` and is
    additionally *awaitable*, so the same handle works from plain threads
    (``future.result()``) and from ``asyncio`` code (``await future``).
    Resolves to the batch's ``List[EngineResult]`` in request order, or
    raises whatever the batch raised.
    """

    def __init__(self, future: "Future[List[EngineResult]]") -> None:
        self._future = future

    def result(self, timeout: Optional[float] = None) -> List[EngineResult]:
        """Block until the batch finishes; its results in request order."""
        return self._future.result(timeout)

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The batch's exception, or ``None`` once it completed cleanly."""
        return self._future.exception(timeout)

    def done(self) -> bool:
        """Whether the batch has finished (successfully or not)."""
        return self._future.done()

    def cancel(self) -> bool:
        """Try to cancel a batch that has not started executing yet."""
        return self._future.cancel()

    def add_done_callback(self, callback) -> None:
        """Invoke *callback* (with this future's inner future) on completion."""
        self._future.add_done_callback(callback)

    def __await__(self):
        import asyncio

        return asyncio.wrap_future(self._future).__await__()

    def __repr__(self) -> str:
        state = "done" if self._future.done() else "pending"
        return f"BatchFuture({state})"


class EngineServer:
    """Shared-store engine pool serving batched count/profile/compare work.

    Parameters
    ----------
    store:
        The artifact cache shared by every worker engine: ``True`` (default)
        uses the process-wide default store, ``None``/``False`` disables
        store consultation, an :class:`~repro.store.ArtifactStore` is used
        as given.
    registry:
        Dataset registry resolving string/path sources (default: the
        process registry).
    max_engines:
        Bound on the worker-engine pool; least-recently-used engines are
        evicted, their computed artifacts surviving in the shared store.
    async_batches:
        Bound on batches dispatched concurrently via :meth:`submit_async`.

    The server is thread-safe: overlapping async batches (and the thread
    backend's workers) share the engine pool under a lock, and each engine
    executes one unit at a time so its internal caches never race.
    """

    def __init__(
        self,
        store: Union[ArtifactStore, bool, None] = True,
        registry: Optional[DatasetRegistry] = None,
        max_engines: int = 8,
        async_batches: int = DEFAULT_ASYNC_BATCHES,
    ) -> None:
        if max_engines <= 0:
            raise SpecError(f"max_engines must be positive, got {max_engines}")
        if async_batches <= 0:
            raise SpecError(f"async_batches must be positive, got {async_batches}")
        self._store = resolve_store(store)
        self._registry = DEFAULT_REGISTRY if registry is None else registry
        self._max_engines = int(max_engines)
        self._async_batches = int(async_batches)
        self._engines: "OrderedDict[object, MotifEngine]" = OrderedDict()
        self._engine_locks: Dict[object, threading.Lock] = {}
        self._pool_lock = threading.RLock()
        self._dispatcher: Optional[ThreadPoolExecutor] = None
        self.stats = ServeStats()

    # -------------------------------------------------------------- properties
    @property
    def store(self) -> Optional[ArtifactStore]:
        """The shared artifact store (``None`` when disabled)."""
        return self._store

    @property
    def num_engines(self) -> int:
        """Worker engines currently resident in the pool."""
        with self._pool_lock:
            return len(self._engines)

    # ----------------------------------------------------------------- serving
    def submit(
        self,
        requests: Iterable[Union[ServeRequest, Tuple[ServeSource, ServeSpec]]],
        workers: int = 1,
        backend: Optional[str] = None,
    ) -> List[EngineResult]:
        """Serve a batch, one typed result per request, in request order.

        Identical ``(dataset, spec)`` pairs are computed once per batch;
        duplicate slots receive a defensive copy of the first result. Plain
        ``(source, spec)`` tuples are accepted alongside
        :class:`ServeRequest` objects.

        Parameters
        ----------
        workers:
            How many units of the deduplicated batch may run concurrently.
        backend:
            ``"serial"`` (default for one worker), ``"thread"`` (default for
            several) or ``"process"`` — see :mod:`repro.store.executors`.
            Results are bit-identical across backends for exact and
            integer-seeded specs.
        """
        executor = resolve_serve_executor(backend, workers)
        normalized = [
            ServeRequest(*request) if isinstance(request, tuple) else request
            for request in requests
        ]
        keys = [
            (self._source_key(request.source), request.spec)
            for request in normalized
        ]
        unique: "OrderedDict[object, ServeRequest]" = OrderedDict()
        for request, key in zip(normalized, keys):
            if key not in unique:
                unique[key] = request
        with self._pool_lock:
            self.stats.batches += 1
            self.stats.requests += len(normalized)
            self.stats.unique += len(unique)
            self.stats.deduplicated += len(normalized) - len(unique)
        units = [self._make_unit(request) for request in unique.values()]
        outcomes = executor.map(units)
        computed = dict(zip(unique.keys(), outcomes))
        return [_fan_out(computed[key]) for key in keys]

    def submit_async(
        self,
        requests: Iterable[Union[ServeRequest, Tuple[ServeSource, ServeSpec]]],
        workers: int = 1,
        backend: Optional[str] = None,
    ) -> BatchFuture:
        """Dispatch a batch without blocking; independent batches overlap.

        The request iterable is snapshotted eagerly (so generators are safe)
        and the batch runs on a background dispatcher thread with exactly
        the :meth:`submit` semantics — same dedup, ordering and backends.
        Returns a :class:`BatchFuture` that is also awaitable from asyncio.

        For *overlapping* async batches prefer the ``thread`` backend: the
        ``process`` backend forks from this (now multi-threaded) process,
        which is safe only up to the usual fork-with-threads caveats on
        Linux Pythons before 3.14 (see
        :class:`~repro.store.executors.ProcessExecutor`).
        """
        snapshot = [
            ServeRequest(*request) if isinstance(request, tuple) else request
            for request in requests
        ]
        # Validate executor parameters in the caller, not the dispatcher
        # thread, so bad arguments raise here and now.
        resolve_serve_executor(backend, workers)
        with self._pool_lock:
            if self._dispatcher is None:
                self._dispatcher = ThreadPoolExecutor(
                    max_workers=self._async_batches,
                    thread_name_prefix="repro-serve",
                )
            future = self._dispatcher.submit(
                self.submit, snapshot, workers=workers, backend=backend
            )
        return BatchFuture(future)

    def count(
        self,
        sources: Sequence[ServeSource],
        spec: Optional[CountSpec] = None,
        workers: int = 1,
        backend: Optional[str] = None,
    ) -> List[CountResult]:
        """Convenience: one count per source with a shared spec."""
        spec = CountSpec() if spec is None else spec
        return self.submit(
            [ServeRequest(source, spec) for source in sources],
            workers=workers,
            backend=backend,
        )

    def warm(
        self,
        sources: Sequence[ServeSource],
        specs: Optional[Sequence[ServeSpec]] = None,
        workers: int = 1,
        backend: Optional[str] = None,
    ) -> List[EngineResult]:
        """Pre-populate the shared store (projection + exact counts by default)."""
        specs = [CountSpec()] if specs is None else list(specs)
        return self.submit(
            [ServeRequest(source, spec) for source in sources for spec in specs],
            workers=workers,
            backend=backend,
        )

    # ---------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down the async dispatcher, waiting for in-flight batches."""
        with self._pool_lock:
            dispatcher, self._dispatcher = self._dispatcher, None
        if dispatcher is not None:
            dispatcher.shutdown(wait=True)

    def __enter__(self) -> "EngineServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ engines
    def engine_for(self, source: ServeSource) -> MotifEngine:
        """The pooled worker engine for *source*, created on first use."""
        key = self._source_key(source)
        with self._pool_lock:
            engine = self._engines.get(key)
            if engine is not None:
                self._engines.move_to_end(key)
                return engine
        # Build outside the pool lock: dataset loading can be slow and must
        # not stall unrelated requests. A racing builder for the same key is
        # tolerated; the first insert wins and the loser is discarded.
        store_arg = self._store if self._store is not None else False
        if isinstance(source, (Hypergraph, TemporalHypergraph)):
            engine = MotifEngine(source, store=store_arg)
        else:
            engine = MotifEngine.load(source, registry=self._registry, store=store_arg)
        with self._pool_lock:
            existing = self._engines.get(key)
            if existing is not None:
                self._engines.move_to_end(key)
                return existing
            self._engines[key] = engine
            self.stats.engines_built += 1
            while len(self._engines) > self._max_engines:
                # The evicted engine's lock entry is kept on purpose: a
                # thread may still be executing on the evicted engine, and a
                # rebuilt engine for the same key must serialize against it
                # under the *same* lock. Lock objects are tiny (one per
                # distinct source ever seen), so the map stays bounded by
                # the workload's dataset universe.
                self._engines.popitem(last=False)
                self.stats.engines_evicted += 1
        return engine

    # ----------------------------------------------------------------- internal
    def _make_unit(self, request: ServeRequest) -> ServeUnit:
        label = (
            request.source
            if isinstance(request.source, (str, Path))
            else getattr(request.source, "name", "hypergraph")
        )
        return ServeUnit(
            run_local=lambda: self._execute(request),
            make_payload=lambda: self._payload_for(request),
            label=f"{label}:{type(request.spec).__name__}",
        )

    def _execute(self, request: ServeRequest) -> EngineResult:
        ensure_servable_spec(request.spec)
        key = self._source_key(request.source)
        engine = self.engine_for(request.source)
        # One unit at a time per engine: MotifEngine's internal memo/caches
        # are not thread-safe, and units on *different* engines still overlap.
        with self._engine_lock(key):
            return dispatch_spec(engine, request.spec)

    def _payload_for(self, request: ServeRequest) -> WorkerPayload:
        ensure_servable_spec(request.spec)
        engine = self.engine_for(request.source)
        hypergraph = engine.hypergraph
        csr = hypergraph.csr()
        store_dir: Optional[str] = None
        if self._store is not None and self._store.persistent:
            store_dir = str(self._store.directory)
        return WorkerPayload(
            edge_ptr=csr.edge_ptr,
            edge_nodes=csr.edge_nodes,
            dataset=hypergraph.name,
            spec=spec_to_dict(request.spec),
            store_dir=store_dir,
        )

    def _engine_lock(self, key: object) -> threading.Lock:
        with self._pool_lock:
            lock = self._engine_locks.get(key)
            if lock is None:
                lock = self._engine_locks[key] = threading.Lock()
            return lock

    @staticmethod
    def _source_key(source: ServeSource) -> object:
        if isinstance(source, Hypergraph):
            # Hypergraphs hash/compare by content, so two equal objects
            # share an engine (and therefore its caches).
            return ("hypergraph", source)
        if isinstance(source, TemporalHypergraph):
            return ("temporal", id(source))
        return ("source", str(source))

    def __repr__(self) -> str:
        return (
            f"EngineServer(engines={self.num_engines}/{self._max_engines}, "
            f"store={'on' if self._store is not None else 'off'}, "
            f"requests={self.stats.requests})"
        )


def _fan_out(result: EngineResult) -> EngineResult:
    """Defensively copy a result's mutable payload before sharing it.

    Every slot of a deduplicated batch gets its own count vectors / row
    list, so one caller mutating a returned result cannot leak into another
    caller's copy.
    """
    if isinstance(result, CountResult):
        return replace(result, counts=MotifCounts(result.counts.to_array()))
    if isinstance(result, ProfileResult):
        profile = result.profile
        return replace(
            result,
            profile=type(profile)(
                name=profile.name,
                values=profile.values.copy(),
                significances=profile.significances.copy(),
                real_counts=MotifCounts(profile.real_counts.to_array()),
                random_counts=MotifCounts(profile.random_counts.to_array()),
            ),
        )
    if isinstance(result, CompareResult):
        report = result.report
        return replace(
            result,
            report=RealVsRandomReport(dataset=report.dataset, rows=list(report.rows)),
        )
    return result
