"""Batched serving driver: many specs over many datasets, one shared store.

:class:`EngineServer` is the warm-start serving path on top of the engine
and the artifact store. It keeps a bounded pool of :class:`MotifEngine`
workers (one per dataset, LRU-evicted) that all share a single
:class:`~repro.store.ArtifactStore`, so an evicted engine's work survives in
the store and the next engine for that dataset warm-starts. A batch
submitted through :meth:`EngineServer.submit` is deduplicated — identical
``(dataset, spec)`` pairs are computed once and fanned out to every
requesting slot — and executed in request order, returning the same typed
results (:class:`CountResult` etc.) the engine does, one per request.

>>> from repro.api import CountSpec, ProfileSpec
>>> from repro.store import ArtifactStore
>>> from repro.store.serve import EngineServer, ServeRequest
>>> server = EngineServer(store=ArtifactStore("/tmp/repro-store"))
>>> results = server.submit([
...     ServeRequest("email-enron-like", CountSpec()),
...     ServeRequest("email-enron-like", CountSpec()),          # deduplicated
...     ServeRequest("contact-primary-like", ProfileSpec(num_random=3, seed=0)),
... ])
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.real_vs_random import RealVsRandomReport
from repro.api.config import CompareSpec, CountSpec, ProfileSpec
from repro.api.engine import MotifEngine
from repro.api.registry import DEFAULT_REGISTRY, DatasetRegistry
from repro.api.results import CompareResult, CountResult, EngineResult, ProfileResult
from repro.exceptions import SpecError
from repro.hypergraph.builders import TemporalHypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.motifs.counts import MotifCounts
from repro.store.artifacts import ArtifactStore, resolve_store

#: Specs the server knows how to dispatch (predict needs temporal data and a
#: classifier grid — it stays an engine-level workflow for now).
ServeSpec = Union[CountSpec, ProfileSpec, CompareSpec]
ServeSource = Union[str, Path, Hypergraph, TemporalHypergraph]


@dataclass(frozen=True)
class ServeRequest:
    """One unit of serving work: a dataset source plus a typed spec."""

    source: ServeSource
    spec: ServeSpec


@dataclass
class ServeStats:
    """Counters over the lifetime of one :class:`EngineServer`."""

    requests: int = 0
    unique: int = 0
    deduplicated: int = 0
    engines_built: int = 0
    engines_evicted: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "unique": self.unique,
            "deduplicated": self.deduplicated,
            "engines_built": self.engines_built,
            "engines_evicted": self.engines_evicted,
        }


class EngineServer:
    """Shared-store engine pool serving batched count/profile/compare work.

    Parameters
    ----------
    store:
        The artifact cache shared by every worker engine: ``True`` (default)
        uses the process-wide default store, ``None``/``False`` disables
        store consultation, an :class:`~repro.store.ArtifactStore` is used
        as given.
    registry:
        Dataset registry resolving string/path sources (default: the
        process registry).
    max_engines:
        Bound on the worker-engine pool; least-recently-used engines are
        evicted, their computed artifacts surviving in the shared store.
    """

    def __init__(
        self,
        store: Union[ArtifactStore, bool, None] = True,
        registry: Optional[DatasetRegistry] = None,
        max_engines: int = 8,
    ) -> None:
        if max_engines <= 0:
            raise SpecError(f"max_engines must be positive, got {max_engines}")
        self._store = resolve_store(store)
        self._registry = DEFAULT_REGISTRY if registry is None else registry
        self._max_engines = int(max_engines)
        self._engines: "OrderedDict[object, MotifEngine]" = OrderedDict()
        self.stats = ServeStats()

    # -------------------------------------------------------------- properties
    @property
    def store(self) -> Optional[ArtifactStore]:
        """The shared artifact store (``None`` when disabled)."""
        return self._store

    @property
    def num_engines(self) -> int:
        """Worker engines currently resident in the pool."""
        return len(self._engines)

    # ----------------------------------------------------------------- serving
    def submit(
        self,
        requests: Iterable[Union[ServeRequest, Tuple[ServeSource, ServeSpec]]],
    ) -> List[EngineResult]:
        """Serve a batch, one typed result per request, in request order.

        Identical ``(dataset, spec)`` pairs are computed once per batch;
        duplicate slots receive a defensive copy of the first result. Plain
        ``(source, spec)`` tuples are accepted alongside
        :class:`ServeRequest` objects.
        """
        computed: Dict[Tuple[object, ServeSpec], EngineResult] = {}
        results: List[EngineResult] = []
        for request in requests:
            if isinstance(request, tuple):
                request = ServeRequest(*request)
            key = (self._source_key(request.source), request.spec)
            self.stats.requests += 1
            if key in computed:
                self.stats.deduplicated += 1
            else:
                computed[key] = self._execute(request)
                self.stats.unique += 1
            results.append(_fan_out(computed[key]))
        return results

    def count(
        self, sources: Sequence[ServeSource], spec: Optional[CountSpec] = None
    ) -> List[CountResult]:
        """Convenience: one count per source with a shared spec."""
        spec = CountSpec() if spec is None else spec
        return self.submit([ServeRequest(source, spec) for source in sources])

    def warm(
        self,
        sources: Sequence[ServeSource],
        specs: Optional[Sequence[ServeSpec]] = None,
    ) -> List[EngineResult]:
        """Pre-populate the shared store (projection + exact counts by default)."""
        specs = [CountSpec()] if specs is None else list(specs)
        return self.submit(
            [ServeRequest(source, spec) for source in sources for spec in specs]
        )

    # ------------------------------------------------------------------ engines
    def engine_for(self, source: ServeSource) -> MotifEngine:
        """The pooled worker engine for *source*, created on first use."""
        key = self._source_key(source)
        engine = self._engines.get(key)
        if engine is not None:
            self._engines.move_to_end(key)
            return engine
        store_arg = self._store if self._store is not None else False
        if isinstance(source, (Hypergraph, TemporalHypergraph)):
            engine = MotifEngine(source, store=store_arg)
        else:
            engine = MotifEngine.load(source, registry=self._registry, store=store_arg)
        self._engines[key] = engine
        self.stats.engines_built += 1
        while len(self._engines) > self._max_engines:
            self._engines.popitem(last=False)
            self.stats.engines_evicted += 1
        return engine

    # ----------------------------------------------------------------- internal
    def _execute(self, request: ServeRequest) -> EngineResult:
        engine = self.engine_for(request.source)
        spec = request.spec
        if isinstance(spec, CountSpec):
            return engine.count(spec)
        if isinstance(spec, ProfileSpec):
            return engine.profile(spec)
        if isinstance(spec, CompareSpec):
            return engine.compare(spec)
        raise SpecError(
            f"EngineServer serves CountSpec, ProfileSpec and CompareSpec, "
            f"got {type(spec).__name__}"
        )

    @staticmethod
    def _source_key(source: ServeSource) -> object:
        if isinstance(source, Hypergraph):
            # Hypergraphs hash/compare by content, so two equal objects
            # share an engine (and therefore its caches).
            return ("hypergraph", source)
        if isinstance(source, TemporalHypergraph):
            return ("temporal", id(source))
        return ("source", str(source))

    def __repr__(self) -> str:
        return (
            f"EngineServer(engines={len(self._engines)}/{self._max_engines}, "
            f"store={'on' if self._store is not None else 'off'}, "
            f"requests={self.stats.requests})"
        )


def _fan_out(result: EngineResult) -> EngineResult:
    """Defensively copy a result's mutable payload before sharing it.

    Every slot of a deduplicated batch gets its own count vectors / row
    list, so one caller mutating a returned result cannot leak into another
    caller's copy.
    """
    if isinstance(result, CountResult):
        return replace(result, counts=MotifCounts(result.counts.to_array()))
    if isinstance(result, ProfileResult):
        profile = result.profile
        return replace(
            result,
            profile=type(profile)(
                name=profile.name,
                values=profile.values.copy(),
                significances=profile.significances.copy(),
                real_counts=MotifCounts(profile.real_counts.to_array()),
                random_counts=MotifCounts(profile.random_counts.to_array()),
            ),
        )
    if isinstance(result, CompareResult):
        report = result.report
        return replace(
            result,
            report=RealVsRandomReport(dataset=report.dataset, rows=list(report.rows)),
        )
    return result
