"""Dataset fingerprinting: stable content hashes over the CSR arrays.

Artifacts in the :class:`~repro.store.ArtifactStore` are keyed by *what the
data is*, not *where it came from*: two hypergraphs loaded from different
paths (or built with different node labels) share one fingerprint as long as
their canonical CSR layouts agree. The CSR view is the right basis because
the owning :class:`~repro.hypergraph.Hypergraph` already canonicalizes it —
dense node ids follow the deterministic node ordering and each hyperedge row
is sorted ascending — so the fingerprint is independent of node label values
and of the order nodes were listed inside a hyperedge.

Hyperedge *order* is part of the identity on purpose: projections, hyperwedge
lists and seeded sampling draws are all indexed by hyperedge position, so two
hypergraphs whose edges are permuted must not share artifacts.

The companion :func:`params_digest` canonicalizes an artifact's parameter
mapping (a spec rendered as plain JSON types) into the short hash used in
on-disk entry names.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, FrozenSet, Hashable, Iterable, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.fastcore.csr import HypergraphCSR
    from repro.hypergraph.hypergraph import Hypergraph

#: Salt versioning the fingerprint itself; bump to invalidate every stored
#: artifact if the canonical CSR layout ever changes meaning.
_FINGERPRINT_SALT = b"repro.store/fingerprint/v1"

#: Salt for snapshot-lineage fingerprints (``H(parent_fp, delta_digest)``).
_LINEAGE_SALT = b"repro.store/lineage-fingerprint/v1"

#: Hex digits of the params digest kept in on-disk entry names.
PARAMS_DIGEST_LENGTH = 16


def csr_fingerprint(csr: "HypergraphCSR") -> str:
    """Stable content hash of a hypergraph's canonical CSR layout.

    Hashes the shape plus the hyperedge-side rows (``edge_ptr``/``edge_nodes``);
    the transposed node side is fully derived from them. Arrays are rendered
    little-endian before hashing so the digest is platform-stable.
    """
    digest = hashlib.sha256(_FINGERPRINT_SALT)
    digest.update(
        np.array([csr.num_edges, csr.num_nodes], dtype="<i8").tobytes()
    )
    digest.update(np.ascontiguousarray(csr.edge_ptr, dtype="<i8").tobytes())
    digest.update(np.ascontiguousarray(csr.edge_nodes, dtype="<i8").tobytes())
    return digest.hexdigest()


def hypergraph_fingerprint(hypergraph: "Hypergraph") -> str:
    """Fingerprint of a hypergraph (cached on the instance)."""
    return hypergraph.fingerprint()


def delta_digest(added_edges: Iterable[FrozenSet[Hashable]]) -> str:
    """Stable content hash of an ordered hyperedge delta.

    The *sequence* of added edges is part of the identity — appended edges
    take the next indices, and everything downstream (projections, counts,
    seeded draws) is indexed by hyperedge position. Node labels participate
    via ``repr``, matching :meth:`TemporalHypergraph.fingerprint`.
    """
    digest = hashlib.sha256(b"repro.store/delta-digest/v1")
    for edge in added_edges:
        canonical = json.dumps(
            sorted(repr(node) for node in edge), separators=(",", ":")
        )
        digest.update(canonical.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def lineage_fingerprint(parent_fingerprint: str, digest_of_delta: str) -> str:
    """Child snapshot fingerprint ``H(parent_fp, delta_digest)``.

    Chains compose: the fingerprint of snapshot *k* commits to the root
    content fingerprint and every delta along the way, so two chains agree
    on a snapshot's key iff they grew from the same root through the same
    edit history — without ever hashing the (shared) full payload again.
    """
    digest = hashlib.sha256(_LINEAGE_SALT)
    digest.update(parent_fingerprint.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(digest_of_delta.encode("utf-8"))
    return digest.hexdigest()


def params_digest(params: Mapping[str, Any]) -> str:
    """Short stable digest of an artifact's canonical parameter mapping.

    *params* must contain plain JSON types only (the codecs guarantee this);
    key order is irrelevant.
    """
    canonical = json.dumps(dict(params), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:PARAMS_DIGEST_LENGTH]
