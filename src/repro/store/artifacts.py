"""The two-tier artifact store: bounded in-memory LRU over a disk tier.

The store keeps computed artifacts — projections, motif counts, null-model
averages, characteristic profiles — keyed by ``(kind, dataset fingerprint,
canonical parameters)``. Lookups hit the hot in-memory tier first (a bounded
LRU shared by every engine holding the store), then the persistent tier,
which survives the process and makes cold CLI runs warm-start. The tiering
follows the LSM-store playbook in miniature: a small mutable memory tier in
front of an append-friendly on-disk tier with an explicit versioned manifest
and a compaction pass (:meth:`ArtifactStore.gc`) that drops stale or
corrupted entries.

On-disk layout (under the store directory)::

    manifest.json                       # {"format_version": 1, ...}
    data/<fingerprint>/<kind>-<digest>.npz    # payload arrays
    data/<fingerprint>/<kind>-<digest>.json   # entry manifest (sidecar)

Every write is atomic (unique temp file + ``os.replace``), payload before
sidecar, so concurrent writers of the same artifact cannot clobber each
other and a sidecar never references a missing payload. Each sidecar records
the entry's format version, its full parameter mapping and a SHA-256
checksum of the payload bytes; reads re-verify all three and treat any
mismatch — truncation, corruption, a digest collision, a layout upgrade —
as a miss, falling back to recomputation. A store whose top-level manifest
carries an unknown format version suspends the disk tier entirely (reads
miss, writes are skipped) until :meth:`~ArtifactStore.gc` compacts it.

The store is safe under **concurrent same-directory writers** — parallel
serving workers (threads or processes) persisting overlapping fingerprints.
Multi-file critical sections (an entry's payload + sidecar pair, the
manifest, and the whole :meth:`~ArtifactStore.gc` walk) serialize on an
advisory interprocess :class:`~repro.store.locks.FileLock`; reconciliation
is last-writer-wins, so racing writers of one entry leave whichever complete
payload/sidecar pair was published last. Lock contention past the bounded
timeout never blocks or corrupts anything: the write **degrades to the
memory tier** (counted in ``stats.lock_contention``) and the artifact is
simply recomputed by the next cold reader.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.exceptions import StoreError
from repro.store import faults
from repro.store.fingerprint import params_digest
from repro.store.locks import FileLock

#: Store layout version; entries and manifests from other versions are
#: ignored by reads and reaped by :meth:`ArtifactStore.gc`.
FORMAT_VERSION = 1

#: Environment variable naming the process-wide default store directory.
ENV_STORE_DIR = "REPRO_STORE_DIR"

#: Cache-tier labels reported back to callers as hit provenance.
TIER_MEMORY = "memory"
TIER_DISK = "disk"

#: Default bound on the in-memory tier (number of artifacts, not bytes —
#: individual artifacts are small: 26-float vectors and CSR adjacency).
DEFAULT_MEMORY_ITEMS = 128

#: Default bound on waiting for the interprocess write lock before a write
#: degrades to the memory tier.
DEFAULT_LOCK_TIMEOUT = 5.0

_MANIFEST_NAME = "manifest.json"
_DATA_DIR = "data"
_TMP_MARKER = ".tmp-"
_LOCK_NAME = ".store.lock"


@dataclass
class StoreStats:
    """Hit/miss/write counters of one :class:`ArtifactStore` instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    writes: int = 0
    write_errors: int = 0
    corrupt_entries: int = 0
    evictions: int = 0
    lock_contention: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain mapping of the counters (for logs and the CLI)."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "writes": self.writes,
            "write_errors": self.write_errors,
            "corrupt_entries": self.corrupt_entries,
            "evictions": self.evictions,
            "lock_contention": self.lock_contention,
        }


@dataclass(frozen=True)
class StoreEntry:
    """One valid persisted artifact, as listed by :meth:`ArtifactStore.entries`."""

    kind: str
    fingerprint: str
    dataset: Optional[str]
    params: Dict[str, Any]
    created: float
    payload_bytes: int
    path: Path


@dataclass
class GCStats:
    """Outcome of one :meth:`ArtifactStore.gc` compaction pass."""

    kept_entries: int = 0
    removed_entries: int = 0
    removed_files: int = 0
    reclaimed_bytes: int = 0
    details: List[str] = field(default_factory=list)


class ArtifactStore:
    """Process-shared artifact cache with an optional persistent directory.

    Parameters
    ----------
    directory:
        Root of the persistent tier. ``None`` keeps the store memory-only —
        still useful for sharing artifacts across engines in one process.
    memory_items:
        Bound on the in-memory LRU tier (0 disables it, so every read goes
        to disk).
    lock_timeout:
        Seconds to wait for the interprocess write lock before a disk write
        degrades to the memory tier (``stats.lock_contention`` counts these).
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        memory_items: int = DEFAULT_MEMORY_ITEMS,
        lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
    ) -> None:
        if memory_items < 0:
            raise StoreError(f"memory_items must be >= 0, got {memory_items}")
        if lock_timeout < 0:
            raise StoreError(f"lock_timeout must be >= 0, got {lock_timeout}")
        self._directory = Path(directory).expanduser() if directory else None
        self._memory_items = int(memory_items)
        self._lock_timeout = float(lock_timeout)
        # Created eagerly (construction never touches the filesystem): a
        # lazily-raced assignment could replace a FileLock another thread
        # holds, leaking its lock fd and wedging every future disk write.
        self._write_lock: Optional[FileLock] = (
            FileLock(self._directory / _LOCK_NAME)
            if self._directory is not None
            else None
        )
        self._memory: "OrderedDict[Tuple[str, str, str], Tuple[Dict[str, np.ndarray], Dict[str, Any]]]" = (
            OrderedDict()
        )
        self._lock = threading.RLock()
        self._disk_stale = False
        self._disk_error: Optional[str] = None
        self.stats = StoreStats()
        if self._directory is not None:
            self._init_directory()

    # -------------------------------------------------------------- properties
    @property
    def directory(self) -> Optional[Path]:
        """Root of the persistent tier (``None`` for a memory-only store)."""
        return self._directory

    @property
    def persistent(self) -> bool:
        """Whether this store has an active persistent tier."""
        return (
            self._directory is not None
            and not self._disk_stale
            and self._disk_error is None
        )

    @property
    def disk_error(self) -> Optional[str]:
        """Why the persistent tier is unavailable (``None`` when it is fine).

        Set when the store directory cannot be created or initialized — the
        store then degrades to memory-only instead of failing the
        computations it caches.
        """
        return self._disk_error

    @property
    def disk_stale(self) -> bool:
        """True when the on-disk manifest has an unknown format version.

        A stale disk tier is suspended — reads miss and writes are skipped —
        until :meth:`gc` compacts the directory and rewrites the manifest.
        """
        return self._disk_stale

    # ------------------------------------------------------------------- reads
    def get(
        self, kind: str, fingerprint: str, params: Mapping[str, Any]
    ) -> Optional[Tuple[Dict[str, np.ndarray], Dict[str, Any], str]]:
        """Look up one artifact; returns ``(arrays, meta, tier)`` or ``None``.

        The returned arrays are read-only and shared with the memory tier —
        callers must copy before mutating (the codecs' decoders do).
        """
        key = (kind, fingerprint, params_digest(params))
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                arrays, meta = cached
                return arrays, meta, TIER_MEMORY
        loaded = self._disk_get(kind, fingerprint, params, key[2])
        if loaded is None:
            with self._lock:
                self.stats.misses += 1
            return None
        arrays, meta = loaded
        with self._lock:
            self._memory_put(key, arrays, meta)
            self.stats.disk_hits += 1
        return arrays, meta, TIER_DISK

    # ------------------------------------------------------------------ writes
    def put(
        self,
        kind: str,
        fingerprint: str,
        params: Mapping[str, Any],
        arrays: Mapping[str, np.ndarray],
        meta: Optional[Mapping[str, Any]] = None,
        dataset: Optional[str] = None,
    ) -> None:
        """Store one artifact in both tiers.

        Disk failures (read-only directory, disk full) are absorbed into
        ``stats.write_errors`` — a broken store must degrade to recompute,
        never break the computation it was meant to speed up.
        """
        frozen: Dict[str, np.ndarray] = {}
        for name, array in arrays.items():
            array = np.asarray(array).copy()
            array.setflags(write=False)
            frozen[name] = array
        meta = dict(meta or {})
        digest = params_digest(params)
        key = (kind, fingerprint, digest)
        with self._lock:
            self._memory_put(key, frozen, meta)
            self.stats.writes += 1
        if not self.persistent:
            return
        try:
            self._disk_put(kind, fingerprint, params, digest, frozen, meta, dataset)
        except OSError:
            with self._lock:
                self.stats.write_errors += 1

    def clear_memory(self) -> None:
        """Drop the in-memory tier (the persistent tier is untouched)."""
        with self._lock:
            self._memory.clear()

    # --------------------------------------------------------------- listing
    def entries(self) -> List[StoreEntry]:
        """All valid persisted entries (invalid ones are skipped; see :meth:`gc`)."""
        result: List[StoreEntry] = []
        if not self.persistent:
            return result
        data_root = self._directory / _DATA_DIR
        if not data_root.is_dir():
            return result
        for sidecar in sorted(data_root.glob("*/*.json")):
            record = self._read_sidecar(sidecar)
            if record is None:
                continue
            payload = sidecar.with_suffix(".npz")
            try:
                payload_bytes = payload.stat().st_size
            except OSError:
                continue
            result.append(
                StoreEntry(
                    kind=str(record["kind"]),
                    fingerprint=str(record["fingerprint"]),
                    dataset=record.get("dataset"),
                    params=dict(record.get("params", {})),
                    created=float(record.get("created", 0.0)),
                    payload_bytes=payload_bytes,
                    path=sidecar,
                )
            )
        return result

    def __len__(self) -> int:
        return len(self.entries())

    # -------------------------------------------------------------- compaction
    def gc(self, verify_checksums: bool = True) -> GCStats:
        """Compact the persistent tier.

        Removes leftover temp files, sidecars with unparseable JSON or a
        stale format version, entries whose payload is missing or (when
        *verify_checksums*) fails its checksum, and payloads with no sidecar.
        A store whose top-level manifest was stale is wiped entirely and its
        manifest rewritten at the current version, re-enabling the disk tier.

        The whole pass runs under the interprocess write lock, so compaction
        never deletes the payload half of an entry a racing writer is mid-way
        through publishing; if the lock cannot be acquired the pass is skipped
        (reported in ``details``) rather than risking exactly that race.
        """
        stats = GCStats()
        if self._directory is None:
            return stats
        if self._disk_error is not None:
            # Re-probe: the path may have become usable since __init__. Runs
            # outside the instance lock (it may wait on the file lock when
            # writing the manifest); the state fields it touches are simple
            # assignments, and a racing get/put at worst misses or skips disk
            # during the probe.
            self._disk_error = None
            self._init_directory()
            if self._disk_error is not None:
                stats.details.append(
                    f"store directory unavailable: {self._disk_error}"
                )
                return stats
        # Wait for the interprocess lock *before* taking the instance lock:
        # a contended wait here must not stall concurrent memory-tier
        # get/put, which never touch the files gc compacts.
        if not self._acquire_write_lock():
            stats.details.append(
                "write-lock contention: compaction skipped (another "
                "process holds the store lock)"
            )
            return stats
        try:
            with self._lock:
                return self._gc_locked(stats, verify_checksums)
        finally:
            self._release_write_lock()

    def _gc_locked(self, stats: GCStats, verify_checksums: bool) -> GCStats:
        """The compaction body; caller holds both the instance and file locks."""
        try:
            if self._disk_stale:
                self._wipe_data(stats)
                self._write_manifest()
                self._disk_stale = False
                return stats
        except OSError as error:
            self._disk_error = str(error)
            stats.details.append(f"store directory unavailable: {error}")
            return stats
        data_root = self._directory / _DATA_DIR
        if not data_root.is_dir():
            return stats
        for path in sorted(data_root.glob("*/*")):
            if _TMP_MARKER in path.name:
                self._remove(path, stats, "leftover temp file")
        for sidecar in sorted(data_root.glob("*/*.json")):
            record = self._read_sidecar(sidecar, verify_checksum=verify_checksums)
            payload = sidecar.with_suffix(".npz")
            if record is None:
                self._remove(sidecar, stats, "invalid or stale entry")
                if payload.exists():
                    self._remove(payload, stats, "payload of invalid entry")
                stats.removed_entries += 1
            else:
                stats.kept_entries += 1
        for payload in sorted(data_root.glob("*/*.npz")):
            if not payload.with_suffix(".json").exists():
                self._remove(payload, stats, "orphaned payload")
                stats.removed_entries += 1
        for bucket in sorted(data_root.iterdir()):
            try:
                if bucket.is_dir() and not any(bucket.iterdir()):
                    bucket.rmdir()
            except OSError:  # racing writer repopulated the bucket
                continue
        try:
            self._write_manifest()
        except OSError:
            self.stats.write_errors += 1
        return stats

    # ----------------------------------------------------------------- dunder
    def __repr__(self) -> str:
        location = str(self._directory) if self._directory else "memory-only"
        return (
            f"ArtifactStore({location!r}, memory={len(self._memory)}/"
            f"{self._memory_items})"
        )

    # --------------------------------------------------------------- internal
    def _memory_put(
        self,
        key: Tuple[str, str, str],
        arrays: Dict[str, np.ndarray],
        meta: Dict[str, Any],
    ) -> None:
        if self._memory_items == 0:
            return
        self._memory[key] = (arrays, meta)
        self._memory.move_to_end(key)
        while len(self._memory) > self._memory_items:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _acquire_write_lock(self) -> bool:
        """Take the interprocess write lock; ``False`` means degrade.

        Memory-only stores have nothing to serialize. Contention past the
        bounded timeout is counted and reported, never raised — the caller
        skips its disk write and the memory tier carries the artifact.
        """
        if self._write_lock is None:
            return True
        if self._write_lock.acquire(timeout=self._lock_timeout):
            return True
        with self._lock:
            self.stats.lock_contention += 1
        return False

    def _release_write_lock(self) -> None:
        if self._write_lock is not None and self._write_lock.held:
            self._write_lock.release()

    def _init_directory(self) -> None:
        directory = self._directory
        try:
            directory.mkdir(parents=True, exist_ok=True)
            manifest_path = directory / _MANIFEST_NAME
            if not manifest_path.is_file():
                self._write_manifest()
                return
        except OSError as error:
            # An unusable directory (path component is a file, permission
            # denied, ...) must not break the computation the store caches:
            # degrade to memory-only and record why.
            self._disk_error = str(error)
            self.stats.write_errors += 1
            return
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            version = manifest["format_version"]
        except (OSError, ValueError, KeyError, TypeError):
            self._disk_stale = True
            return
        if version != FORMAT_VERSION:
            self._disk_stale = True

    def _write_manifest(self) -> None:
        payload = json.dumps(
            {
                "format_version": FORMAT_VERSION,
                "store": "repro.store",
                "created": time.time(),
            },
            indent=2,
        )
        if not self._acquire_write_lock():
            # The lock holder is writing the manifest or compacting; this
            # rewrite is redundant — degrade by skipping it.
            return
        try:
            _atomic_write_bytes(
                self._directory / _MANIFEST_NAME, (payload + "\n").encode("utf-8")
            )
        finally:
            self._release_write_lock()

    def _entry_paths(
        self, kind: str, fingerprint: str, digest: str
    ) -> Tuple[Path, Path]:
        bucket = self._directory / _DATA_DIR / fingerprint
        stem = f"{kind}-{digest}"
        return bucket / f"{stem}.npz", bucket / f"{stem}.json"

    def _disk_get(
        self,
        kind: str,
        fingerprint: str,
        params: Mapping[str, Any],
        digest: str,
    ) -> Optional[Tuple[Dict[str, np.ndarray], Dict[str, Any]]]:
        if not self.persistent:
            return None
        payload_path, sidecar_path = self._entry_paths(kind, fingerprint, digest)
        record = self._read_sidecar(sidecar_path)
        if record is None:
            return None
        # Guard against digest collisions and half-written sidecars: the
        # stored identity must match the requested one exactly.
        if (
            record.get("kind") != kind
            or record.get("fingerprint") != fingerprint
            or record.get("params") != _jsonify_params(params)
        ):
            self._mark_corrupt()
            return None
        try:
            data = payload_path.read_bytes()
        except OSError:
            return None
        if hashlib.sha256(data).hexdigest() != record.get("checksum"):
            self._mark_corrupt()
            return None
        try:
            with np.load(io.BytesIO(data), allow_pickle=False) as bundle:
                arrays = {name: bundle[name] for name in bundle.files}
        except (OSError, ValueError):
            self._mark_corrupt()
            return None
        for array in arrays.values():
            array.setflags(write=False)
        return arrays, dict(record.get("meta", {}))

    def _disk_put(
        self,
        kind: str,
        fingerprint: str,
        params: Mapping[str, Any],
        digest: str,
        arrays: Mapping[str, np.ndarray],
        meta: Mapping[str, Any],
        dataset: Optional[str],
    ) -> None:
        # Chaos hook: an injected disk failure is an OSError, absorbed by
        # put() into stats.write_errors exactly like a full disk would be.
        faults.fire("store.disk_write", key=f"{kind}:{fingerprint}")
        payload_path, sidecar_path = self._entry_paths(kind, fingerprint, digest)
        payload_path.parent.mkdir(parents=True, exist_ok=True)
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **dict(arrays))
        data = buffer.getvalue()
        record = {
            "format_version": FORMAT_VERSION,
            "kind": kind,
            "fingerprint": fingerprint,
            "params": _jsonify_params(params),
            "meta": dict(meta),
            "dataset": dataset,
            "checksum": hashlib.sha256(data).hexdigest(),
            "payload": payload_path.name,
            "created": time.time(),
        }
        # The payload/sidecar pair is one critical section: racing writers of
        # the same entry serialize here, so the published pair always comes
        # from a single writer (last writer wins). On contention the write
        # degrades to the memory tier — already populated by the caller.
        if not self._acquire_write_lock():
            return
        try:
            # Payload first, sidecar second: a sidecar on disk always points
            # at a complete payload; the reverse order could publish a
            # dangling entry.
            _atomic_write_bytes(payload_path, data)
            _atomic_write_bytes(
                sidecar_path, (json.dumps(record, indent=2) + "\n").encode("utf-8")
            )
        finally:
            self._release_write_lock()

    def _read_sidecar(
        self, path: Path, verify_checksum: bool = False
    ) -> Optional[Dict[str, Any]]:
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict):
            return None
        if record.get("format_version") != FORMAT_VERSION:
            return None
        if not all(key in record for key in ("kind", "fingerprint", "checksum")):
            return None
        payload = path.with_suffix(".npz")
        if not payload.is_file():
            return None
        if verify_checksum:
            try:
                data = payload.read_bytes()
            except OSError:
                return None
            if hashlib.sha256(data).hexdigest() != record["checksum"]:
                return None
        return record

    def _mark_corrupt(self) -> None:
        with self._lock:
            self.stats.corrupt_entries += 1

    def _wipe_data(self, stats: GCStats) -> None:
        data_root = self._directory / _DATA_DIR
        if not data_root.is_dir():
            return
        for path in sorted(data_root.glob("*/*")):
            if path.suffix == ".json":
                stats.removed_entries += 1
            self._remove(path, stats, "stale-format store entry")
        for bucket in sorted(data_root.iterdir()):
            if bucket.is_dir() and not any(bucket.iterdir()):
                bucket.rmdir()

    @staticmethod
    def _remove(path: Path, stats: GCStats, reason: str) -> None:
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            return
        stats.removed_files += 1
        stats.reclaimed_bytes += size
        stats.details.append(f"{reason}: {path.name}")


def _jsonify_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Round-trip params through JSON so stored and requested forms compare equal."""
    return json.loads(json.dumps(dict(params), sort_keys=True))


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write *data* to *path* atomically via a unique temp file + rename."""
    tmp = path.with_name(f"{path.name}{_TMP_MARKER}{os.getpid()}-{uuid.uuid4().hex}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


# ------------------------------------------------------------- default store
_UNSET = object()
_default_store: Optional[ArtifactStore] = None
_default_source: Any = _UNSET


def default_store() -> Optional[ArtifactStore]:
    """The process-wide default store, honoring :data:`ENV_STORE_DIR`.

    Returns a directory-backed store when ``REPRO_STORE_DIR`` is set and
    ``None`` otherwise — persistence is opt-in, so workflows stay
    side-effect-free unless the user points them at a store. The instance is
    cached per environment value, so every default-configured engine in the
    process shares one memory tier; changing the variable (e.g. in tests)
    transparently rebuilds it.
    """
    global _default_store, _default_source
    directory = os.environ.get(ENV_STORE_DIR) or None
    if directory != _default_source:
        _default_store = ArtifactStore(directory) if directory else None
        _default_source = directory
    return _default_store


def reset_default_store() -> None:
    """Forget the cached default store (test isolation hook)."""
    global _default_store, _default_source
    _default_store = None
    _default_source = _UNSET


def resolve_store(
    store: Union["ArtifactStore", bool, None]
) -> Optional[ArtifactStore]:
    """Normalize the ``store=`` argument every entrypoint accepts.

    ``True`` means the process default (:func:`default_store`), ``None`` or
    ``False`` disables caching, and an :class:`ArtifactStore` is used as-is.
    """
    if store is True:
        return default_store()
    if store is None or store is False:
        return None
    if isinstance(store, ArtifactStore):
        return store
    raise StoreError(
        f"store must be an ArtifactStore, True (process default) or "
        f"None/False (disabled), got {type(store).__name__}"
    )
