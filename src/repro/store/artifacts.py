"""The two-tier artifact store: bounded in-memory LRU over an LSM disk tier.

The store keeps computed artifacts — projections, motif counts, null-model
averages, characteristic profiles, hyperwedge lists, prediction results —
keyed by ``(kind, dataset fingerprint, canonical parameters)``. Lookups hit
the hot in-memory tier first (a bounded LRU shared by every engine holding
the store), then the persistent tier, which survives the process and makes
cold CLI runs warm-start. The persistent tier is the log-structured engine
in :mod:`repro.store.lsm` — the memory LRU plays the memtable, fresh writes
land as O(1) appended records in per-shard logs (L0), and
:meth:`ArtifactStore.gc` compacts each shard's log into its sorted base
manifest (L1) while applying the store's eviction policy.

On-disk layout (under the store directory; see :mod:`repro.store.lsm`)::

    manifest.json                  # {"format_version": 2, ...}
    shards/<xx>/manifest.log       # L0: append-only JSONL manifest records
    shards/<xx>/manifest.base.json # L1: sorted base manifest (compacted)
    shards/<xx>/.shard.lock        # per-shard interprocess FileLock
    shards/<xx>/<fp>/<kind>-<digest>.npz   # payload arrays (KV-separated)

Every file write is atomic (unique temp file + ``os.replace`` for payloads
and base manifests, a single O_APPEND record for the log), payload before
record, so a published record never references a missing payload. Each
record carries the entry's format version, its full parameter mapping and a
SHA-256 checksum of the payload bytes; reads re-verify all three and treat
any mismatch — truncation, corruption, a digest collision, a layout
upgrade — as a miss, falling back to recomputation. A directory written by
the flat version-1 layout is migrated in place on open (every artifact
kept); a manifest with an unknown version suspends the disk tier entirely
(reads miss, writes are skipped) until :meth:`~ArtifactStore.gc` resets it.

The store is safe under **concurrent same-directory writers** — parallel
serving workers (threads or processes) persisting overlapping fingerprints.
Writers serialize per shard on an advisory interprocess
:class:`~repro.store.locks.FileLock`, so writers on different fingerprint
prefixes never contend at all; racing writers of one entry are last-writer-
wins. Lock contention past the bounded timeout never blocks or corrupts
anything: the write **degrades to the memory tier** (counted in
``stats.lock_contention``) and the artifact is simply recomputed by the next
cold reader.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from dataclasses import dataclass

from repro.exceptions import StoreError
from repro.obs import metrics as obs_metrics
from repro.obs.trace import log_event
from repro.store.fingerprint import params_digest
from repro.utils.logging import get_logger
from repro.store.locks import FileLock
from repro.store.lsm import (
    FLAT_FORMAT_VERSION,
    FORMAT_VERSION,
    EvictionPolicy,
    GCStats,
    LSMDiskTier,
    StoreEntry,
    atomic_write_bytes as _atomic_write_bytes,
    jsonify_params as _jsonify_params,
    shard_of,
)

__all__ = [
    "ArtifactStore",
    "StoreStats",
    "StoreEntry",
    "GCStats",
    "EvictionPolicy",
    "FORMAT_VERSION",
    "FLAT_FORMAT_VERSION",
    "ENV_STORE_DIR",
    "TIER_MEMORY",
    "TIER_DISK",
    "default_store",
    "reset_default_store",
    "resolve_store",
    "shard_of",
]

#: Environment variable naming the process-wide default store directory.
ENV_STORE_DIR = "REPRO_STORE_DIR"

#: Cache-tier labels reported back to callers as hit provenance.
TIER_MEMORY = "memory"
TIER_DISK = "disk"

#: Default bound on the in-memory tier (number of artifacts, not bytes —
#: individual artifacts are small: 26-float vectors and CSR adjacency).
DEFAULT_MEMORY_ITEMS = 128

#: Default bound on waiting for a shard's interprocess lock before a write
#: degrades to the memory tier.
DEFAULT_LOCK_TIMEOUT = 5.0

_MANIFEST_NAME = "manifest.json"
_LOCK_NAME = ".store.lock"

LOGGER = get_logger(__name__)

STORE_GETS_TOTAL = obs_metrics.counter(
    "repro_store_gets_total",
    "Artifact lookups by outcome: memory_hit, disk_hit or miss.",
    ("outcome",),
)
STORE_PUTS_TOTAL = obs_metrics.counter(
    "repro_store_puts_total",
    "Artifact writes by outcome: ok (both tiers), memory_only (no "
    "persistent tier), error (disk failure), contention (shard lock busy).",
    ("outcome",),
)
STORE_MEMORY_EVICTIONS_TOTAL = obs_metrics.counter(
    "repro_store_memory_evictions_total",
    "Artifacts LRU-evicted from the in-memory tier.",
)


@dataclass
class StoreStats:
    """Hit/miss/write counters of one :class:`ArtifactStore` instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    writes: int = 0
    write_errors: int = 0
    corrupt_entries: int = 0
    evictions: int = 0
    lock_contention: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain mapping of the counters (for logs and the CLI)."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "writes": self.writes,
            "write_errors": self.write_errors,
            "corrupt_entries": self.corrupt_entries,
            "evictions": self.evictions,
            "lock_contention": self.lock_contention,
        }


class ArtifactStore:
    """Process-shared artifact cache with an optional persistent directory.

    Parameters
    ----------
    directory:
        Root of the persistent tier. ``None`` keeps the store memory-only —
        still useful for sharing artifacts across engines in one process.
    memory_items:
        Bound on the in-memory LRU tier (0 disables it, so every read goes
        to disk).
    lock_timeout:
        Seconds to wait for a shard's interprocess lock before a disk write
        degrades to the memory tier (``stats.lock_contention`` counts these).
    policy:
        Size/TTL eviction policy applied to the persistent tier at
        :meth:`gc` time (see :class:`repro.store.lsm.EvictionPolicy`). The
        default policy is unbounded — nothing valid is ever evicted.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        memory_items: int = DEFAULT_MEMORY_ITEMS,
        lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
        policy: Optional[EvictionPolicy] = None,
    ) -> None:
        if memory_items < 0:
            raise StoreError(f"memory_items must be >= 0, got {memory_items}")
        if lock_timeout < 0:
            raise StoreError(f"lock_timeout must be >= 0, got {lock_timeout}")
        self._directory = Path(directory).expanduser() if directory else None
        self._memory_items = int(memory_items)
        self._lock_timeout = float(lock_timeout)
        self.policy = policy or EvictionPolicy()
        # Created eagerly (construction never touches the filesystem): a
        # lazily-raced assignment could replace a FileLock another thread
        # holds, leaking its lock fd and wedging every future disk write.
        # The global lock now guards only whole-store transitions — the
        # top-level manifest, flat-layout migration and stale wipes; entry
        # writes serialize on the tier's per-shard locks instead.
        self._write_lock: Optional[FileLock] = (
            FileLock(self._directory / _LOCK_NAME)
            if self._directory is not None
            else None
        )
        self._tier: Optional[LSMDiskTier] = (
            LSMDiskTier(
                self._directory,
                lock_timeout=self._lock_timeout,
                policy=self.policy,
                on_corrupt=self._mark_corrupt,
            )
            if self._directory is not None
            else None
        )
        self._memory: OrderedDict[
            Tuple[str, str, str], Tuple[Dict[str, np.ndarray], Dict[str, Any]]
        ] = OrderedDict()
        self._lock = threading.RLock()
        self._disk_stale = False
        self._disk_error: Optional[str] = None
        self.stats = StoreStats()
        if self._directory is not None:
            self._init_directory()

    # -------------------------------------------------------------- properties
    @property
    def directory(self) -> Optional[Path]:
        """Root of the persistent tier (``None`` for a memory-only store)."""
        return self._directory

    @property
    def persistent(self) -> bool:
        """Whether this store has an active persistent tier."""
        return (
            self._directory is not None
            and not self._disk_stale
            and self._disk_error is None
        )

    @property
    def disk_error(self) -> Optional[str]:
        """Why the persistent tier is unavailable (``None`` when it is fine).

        Set when the store directory cannot be created or initialized — the
        store then degrades to memory-only instead of failing the
        computations it caches.
        """
        return self._disk_error

    @property
    def disk_stale(self) -> bool:
        """True when the on-disk manifest has an unknown format version.

        A stale disk tier is suspended — reads miss and writes are skipped —
        until :meth:`gc` resets the directory and rewrites the manifest.
        """
        return self._disk_stale

    # ------------------------------------------------------------------- reads
    def get(
        self, kind: str, fingerprint: str, params: Mapping[str, Any]
    ) -> Optional[Tuple[Dict[str, np.ndarray], Dict[str, Any], str]]:
        """Look up one artifact; returns ``(arrays, meta, tier)`` or ``None``.

        The returned arrays are read-only and shared with the memory tier —
        callers must copy before mutating (the codecs' decoders do).
        """
        key = (kind, fingerprint, params_digest(params))
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                arrays, meta = cached
                STORE_GETS_TOTAL.inc(outcome="memory_hit")
                return arrays, meta, TIER_MEMORY
        loaded = None
        if self.persistent:
            loaded = self._tier.get(kind, fingerprint, key[2], params)
        if loaded is None:
            with self._lock:
                self.stats.misses += 1
            STORE_GETS_TOTAL.inc(outcome="miss")
            return None
        arrays, meta = loaded
        with self._lock:
            self._memory_put(key, arrays, meta)
            self.stats.disk_hits += 1
        STORE_GETS_TOTAL.inc(outcome="disk_hit")
        return arrays, meta, TIER_DISK

    # ------------------------------------------------------------------ writes
    def put(
        self,
        kind: str,
        fingerprint: str,
        params: Mapping[str, Any],
        arrays: Mapping[str, np.ndarray],
        meta: Optional[Mapping[str, Any]] = None,
        dataset: Optional[str] = None,
    ) -> None:
        """Store one artifact in both tiers.

        Disk failures (read-only directory, disk full) are absorbed into
        ``stats.write_errors`` and shard-lock contention into
        ``stats.lock_contention`` — a broken or contended store must degrade
        to recompute, never break the computation it was meant to speed up.
        """
        frozen: Dict[str, np.ndarray] = {}
        for name, array in arrays.items():
            array = np.asarray(array).copy()
            array.setflags(write=False)
            frozen[name] = array
        meta = dict(meta or {})
        digest = params_digest(params)
        key = (kind, fingerprint, digest)
        with self._lock:
            self._memory_put(key, frozen, meta)
            self.stats.writes += 1
        if not self.persistent:
            STORE_PUTS_TOTAL.inc(outcome="memory_only")
            return
        try:
            stored = self._tier.put(
                kind, fingerprint, digest, params, frozen, meta, dataset
            )
        except OSError as error:
            with self._lock:
                self.stats.write_errors += 1
            STORE_PUTS_TOTAL.inc(outcome="error")
            log_event(
                LOGGER,
                "store.put_degraded",
                kind=kind,
                fingerprint=fingerprint[:12],
                error=str(error),
            )
            return
        if not stored:
            with self._lock:
                self.stats.lock_contention += 1
            STORE_PUTS_TOTAL.inc(outcome="contention")
            return
        STORE_PUTS_TOTAL.inc(outcome="ok")

    def clear_memory(self) -> None:
        """Drop the in-memory tier (the persistent tier is untouched)."""
        with self._lock:
            self._memory.clear()

    # --------------------------------------------------------------- listing
    def entries(self) -> List[StoreEntry]:
        """All valid persisted entries, in sorted index order per shard."""
        if not self.persistent:
            return []
        return self._tier.entries()

    def occupancy(self) -> Optional[Dict[str, Any]]:
        """Shard/level occupancy of the persistent tier (``None`` when absent).

        The snapshot feeds ``EngineServer.describe()`` and ``GET /v1/stats``:
        per-shard entry and byte counts, log-vs-base record totals, per-kind
        footprints, and the active eviction policy.
        """
        if not self.persistent:
            return None
        return self._tier.occupancy()

    def shard_lock_path(self, fingerprint: str) -> Optional[Path]:
        """The interprocess lock file guarding *fingerprint*'s shard."""
        if self._tier is None:
            return None
        return self._tier.shard_lock_path(shard_of(fingerprint))

    def __len__(self) -> int:
        return len(self.entries())

    # -------------------------------------------------------------- compaction
    def gc(self, verify_checksums: bool = True) -> GCStats:
        """Compact the persistent tier, one shard at a time.

        Each shard's append log is folded into its sorted base manifest;
        leftover temp files, records with a stale format version, entries
        whose payload is missing or (when *verify_checksums*) fails its
        checksum, orphaned payloads, and entries beyond the eviction
        policy's TTL or byte budget are reclaimed. A store whose top-level
        manifest was stale is wiped entirely and its manifest rewritten at
        the current version, re-enabling the disk tier.

        Shards compact under their own interprocess locks, so compaction
        never deletes the payload a racing writer is mid-way through
        publishing; a shard whose lock cannot be acquired is skipped
        (reported in ``details``) rather than risking exactly that race.
        """
        stats = GCStats()
        if self._directory is None:
            return stats
        if self._disk_error is not None:
            # Re-probe: the path may have become usable (or a racing
            # migration finished) since __init__. Runs outside the instance
            # lock (it may wait on the file lock when writing the manifest);
            # the state fields it touches are simple assignments, and a
            # racing get/put at worst misses or skips disk during the probe.
            self._disk_error = None
            self._init_directory()
            if self._disk_error is not None:
                stats.details.append(
                    f"store directory unavailable: {self._disk_error}"
                )
                return stats
        if self._disk_stale:
            # Whole-store reset: serialize on the global lock so two
            # processes cannot wipe and rewrite the manifest concurrently.
            if not self._acquire_write_lock():
                stats.details.append(
                    "write-lock contention: stale-store reset skipped "
                    "(another process holds the store lock)"
                )
                return stats
            try:
                with self._lock:
                    try:
                        self._tier.wipe(stats)
                        self._write_manifest()
                        self._disk_stale = False
                    except OSError as error:
                        self._disk_error = str(error)
                        stats.details.append(
                            f"store directory unavailable: {error}"
                        )
            finally:
                self._release_write_lock()
            return stats
        self._tier.gc(stats, verify_checksums)
        try:
            self._write_manifest()
        except OSError:
            with self._lock:
                self.stats.write_errors += 1
        return stats

    # ----------------------------------------------------------------- dunder
    def __repr__(self) -> str:
        location = str(self._directory) if self._directory else "memory-only"
        return (
            f"ArtifactStore({location!r}, memory={len(self._memory)}/"
            f"{self._memory_items})"
        )

    # --------------------------------------------------------------- internal
    def _memory_put(
        self,
        key: Tuple[str, str, str],
        arrays: Dict[str, np.ndarray],
        meta: Dict[str, Any],
    ) -> None:
        if self._memory_items == 0:
            return
        self._memory[key] = (arrays, meta)
        self._memory.move_to_end(key)
        while len(self._memory) > self._memory_items:
            self._memory.popitem(last=False)
            self.stats.evictions += 1
            STORE_MEMORY_EVICTIONS_TOTAL.inc()

    def _acquire_write_lock(self) -> bool:
        """Take the global store lock; ``False`` means degrade.

        Memory-only stores have nothing to serialize. Contention past the
        bounded timeout is counted and reported, never raised — the caller
        skips the whole-store transition it was guarding.
        """
        if self._write_lock is None:
            return True
        if self._write_lock.acquire(timeout=self._lock_timeout):
            return True
        with self._lock:
            self.stats.lock_contention += 1
        return False

    def _release_write_lock(self) -> None:
        if self._write_lock is not None and self._write_lock.held:
            self._write_lock.release()

    def _init_directory(self) -> None:
        directory = self._directory
        try:
            directory.mkdir(parents=True, exist_ok=True)
            manifest_path = directory / _MANIFEST_NAME
            if not manifest_path.is_file():
                self._write_manifest()
                return
        except OSError as error:
            # An unusable directory (path component is a file, permission
            # denied, ...) must not break the computation the store caches:
            # degrade to memory-only and record why.
            self._disk_error = str(error)
            self.stats.write_errors += 1
            return
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            version = manifest["format_version"]
        except (OSError, ValueError, KeyError, TypeError):
            self._disk_stale = True
            return
        if version == FORMAT_VERSION:
            return
        if version == FLAT_FORMAT_VERSION:
            self._migrate_flat()
            return
        self._disk_stale = True

    def _migrate_flat(self) -> None:
        """Fold a flat version-1 directory into the sharded layout, in place.

        Serialized on the global store lock; the version is re-checked under
        the lock so only the race winner migrates. Contention degrades to
        memory-only (``disk_error``) — :meth:`gc` re-probes once the other
        process's migration has finished — and is never destructive.
        """
        if not self._acquire_write_lock():
            self._disk_error = (
                "flat-layout migration deferred: another process holds the "
                "store lock"
            )
            return
        try:
            try:
                manifest = json.loads(
                    (self._directory / _MANIFEST_NAME).read_text(encoding="utf-8")
                )
                version = manifest["format_version"]
            except (OSError, ValueError, KeyError, TypeError):
                self._disk_stale = True
                return
            if version == FORMAT_VERSION:
                return
            if version != FLAT_FORMAT_VERSION:
                self._disk_stale = True
                return
            self._tier.migrate_flat()
            self._write_manifest()
        except OSError as error:
            self._disk_error = str(error)
        finally:
            self._release_write_lock()

    def _write_manifest(self) -> None:
        payload = json.dumps(
            {
                "format_version": FORMAT_VERSION,
                "store": "repro.store",
                "layout": "lsm",
                "created": time.time(),
            },
            indent=2,
        )
        if not self._acquire_write_lock():
            # The lock holder is writing the manifest or migrating; this
            # rewrite is redundant — degrade by skipping it.
            return
        try:
            _atomic_write_bytes(
                self._directory / _MANIFEST_NAME, (payload + "\n").encode("utf-8")
            )
        finally:
            self._release_write_lock()

    def _mark_corrupt(self) -> None:
        with self._lock:
            self.stats.corrupt_entries += 1


# ------------------------------------------------------------- default store
_UNSET = object()
_default_store: Optional[ArtifactStore] = None
_default_source: Any = _UNSET


def default_store() -> Optional[ArtifactStore]:
    """The process-wide default store, honoring :data:`ENV_STORE_DIR`.

    Returns a directory-backed store when ``REPRO_STORE_DIR`` is set and
    ``None`` otherwise — persistence is opt-in, so workflows stay
    side-effect-free unless the user points them at a store. The instance is
    cached per environment value, so every default-configured engine in the
    process shares one memory tier; changing the variable (e.g. in tests)
    transparently rebuilds it.
    """
    global _default_store, _default_source
    directory = os.environ.get(ENV_STORE_DIR) or None
    if directory != _default_source:
        _default_store = ArtifactStore(directory) if directory else None
        _default_source = directory
    return _default_store


def reset_default_store() -> None:
    """Forget the cached default store (test isolation hook)."""
    global _default_store, _default_source
    _default_store = None
    _default_source = _UNSET


def resolve_store(
    store: Union["ArtifactStore", bool, None]
) -> Optional[ArtifactStore]:
    """Normalize the ``store=`` argument every entrypoint accepts.

    ``True`` means the process default (:func:`default_store`), ``None`` or
    ``False`` disables caching, and an :class:`ArtifactStore` is used as-is.
    """
    if store is True:
        return default_store()
    if store is None or store is False:
        return None
    if isinstance(store, ArtifactStore):
        return store
    raise StoreError(
        f"store must be an ArtifactStore, True (process default) or "
        f"None/False (disabled), got {type(store).__name__}"
    )
