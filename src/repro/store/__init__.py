"""repro.store — persistent tiered artifact store and cross-engine cache.

The store gives the reproduction a memory of its own computations: every
engine artifact — projected graphs, motif counts, null-model averages,
characteristic profiles — is keyed by a stable **dataset fingerprint**
(content hash of the canonical CSR arrays) plus the canonical run
parameters, cached in a bounded in-memory LRU tier, and persisted to an
on-disk tier with a versioned manifest, atomic writes and corruption
detection. Engines holding the same store share work across instances, and
a store directory shared across processes makes cold CLI runs warm-start.

>>> from repro.api import MotifEngine
>>> from repro.store import ArtifactStore
>>> store = ArtifactStore("/tmp/repro-store")
>>> MotifEngine.load("email-enron-like", store=store).count()   # cold: computes + persists
>>> MotifEngine.load("email-enron-like", store=store).count()   # warm: served from the store

Setting ``REPRO_STORE_DIR`` makes every default-configured engine and CLI
invocation use a shared persistent store (:func:`default_store`); the
``repro-mochy cache ls|gc|warm`` subcommands inspect and manage it. The
batched serving driver lives in :mod:`repro.store.serve` (imported lazily
here to keep ``repro.store`` importable from low-level modules without
dragging in the API layer).
"""

from repro.store.artifacts import (
    ENV_STORE_DIR,
    FLAT_FORMAT_VERSION,
    FORMAT_VERSION,
    TIER_DISK,
    TIER_MEMORY,
    ArtifactStore,
    EvictionPolicy,
    GCStats,
    StoreEntry,
    StoreStats,
    default_store,
    reset_default_store,
    resolve_store,
)
from repro.store.lsm import LSMDiskTier, shard_of
from repro.store.fingerprint import (
    csr_fingerprint,
    hypergraph_fingerprint,
    params_digest,
)
from repro.store.locks import FileLock

__all__ = [
    "ArtifactStore",
    "StoreEntry",
    "StoreStats",
    "GCStats",
    "EvictionPolicy",
    "LSMDiskTier",
    "shard_of",
    "FileLock",
    "EngineServer",
    "ServeRequest",
    "BatchFuture",
    "WorkerPool",
    "UnitFailure",
    "MotifHTTPServer",
    "ServiceClient",
    "build_server",
    "SERVE_BACKENDS",
    "default_store",
    "reset_default_store",
    "resolve_store",
    "csr_fingerprint",
    "hypergraph_fingerprint",
    "params_digest",
    "ENV_STORE_DIR",
    "FORMAT_VERSION",
    "FLAT_FORMAT_VERSION",
    "TIER_MEMORY",
    "TIER_DISK",
]


def __getattr__(name: str):
    # The serving driver builds on repro.api, which itself imports
    # repro.store.artifacts — resolving it lazily keeps the import DAG acyclic
    # while preserving `from repro.store import EngineServer`.
    if name in (
        "EngineServer",
        "ServeRequest",
        "ServeStats",
        "BatchFuture",
        "request_from_dict",
    ):
        from repro.store import serve

        return getattr(serve, name)
    if name in ("SERVE_BACKENDS", "WorkerPool", "UnitFailure"):
        from repro.store import executors

        return getattr(executors, name)
    if name in ("MotifHTTPServer", "MotifService", "build_server", "run"):
        from repro.store import server

        return getattr(server, name)
    if name in ("ServiceClient", "ServiceError"):
        from repro.store import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
