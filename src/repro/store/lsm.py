"""``repro.store.lsm`` — sharded, log-structured disk tier for the store.

This module is the storage engine beneath :class:`~repro.store.ArtifactStore`:
the memory LRU and the public ``get``/``put``/``gc`` contract live in
:mod:`repro.store.artifacts`; everything that touches the persistent
directory lives here. The design follows the LSM-tree playbook (append-only
logs compacted in levels) with LearnedKV-style KV separation: the *index* —
one small manifest record per artifact — is kept sorted in memory and
binary-searched, while the fat ``.npz`` payloads stay on disk and are read
only on a hit.

On-disk layout (under the store directory)::

    manifest.json                  # {"format_version": 2, ...}
    shards/<xx>/manifest.log       # L0: append-only JSONL of manifest records
    shards/<xx>/manifest.base.json # L1: sorted base manifest (compacted)
    shards/<xx>/.shard.lock        # per-shard interprocess FileLock
    shards/<xx>/<fp>/<kind>-<digest>.npz   # payload arrays (KV-separated)

``<xx>`` is the first two hex characters of the artifact's dataset
fingerprint (:func:`shard_of`), giving 256 buckets. Writers on different
fingerprint prefixes touch different shards and therefore different locks
and different logs — they never contend. A write is one payload file plus
**one appended log record** (O(1)), where the flat layout rewrote shared
manifest state under a single global lock.

Levels and compaction
---------------------
A fresh write lands in the shard's log — the L0 of the analogy (the memory
LRU above this tier plays the memtable). :meth:`LSMDiskTier.gc` compacts
each shard: the log is folded into the sorted base manifest (L1), superseded
and corrupt payloads are reclaimed, and the size/TTL eviction policy is
applied. Compaction is crash-safe: the new base is published with an atomic
temp-file + ``os.replace`` *before* the log is truncated, and payload files
are deleted last, so a crash at any point leaves either the old
(base, log) pair or a new base whose records the leftover log merely
repeats — replay-on-open loses no committed artifact. A trailing partial
log record (a writer crashed mid-append) is skipped by replay.

Eviction
--------
:class:`EvictionPolicy` gives the tier a store-wide byte budget and
per-artifact-kind TTLs, both enforced at compaction time. When the budget is
exceeded, victims are chosen globally across shards in *priority* order —
bulky cold kinds (projections, null-count stacks) age out before hot small
ones (count vectors, profiles) — and oldest-first within a kind.

Migration
---------
A directory written by the flat layout (format version 1: one global
``manifest.json`` plus ``data/<fp>/<kind>-<digest>.{npz,json}`` entry pairs)
is detected on open and migrated in place under the store's global lock:
each valid sidecar becomes one log record in its fingerprint's shard and the
payload file is moved, so existing stores keep every artifact with no
recomputation.
"""

from __future__ import annotations

import bisect
import hashlib
import io
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.trace import log_event
from repro.store import faults
from repro.store.locks import FileLock
from repro.utils.logging import get_logger

LOGGER = get_logger(__name__)

LSM_GET_SECONDS = obs_metrics.histogram(
    "repro_lsm_get_seconds",
    "Disk-tier lookup latency (index search + payload read + checksum), "
    "per shard.",
    ("shard",),
)
LSM_PUT_SECONDS = obs_metrics.histogram(
    "repro_lsm_put_seconds",
    "Disk-tier write latency (payload encode + atomic write + log append), "
    "per shard.",
    ("shard",),
)
LSM_COMPACTION_SECONDS = obs_metrics.histogram(
    "repro_lsm_compaction_seconds",
    "Duration of one shard's gc compaction pass.",
    ("shard",),
)
LSM_COMPACTION_RECLAIMED_BYTES = obs_metrics.counter(
    "repro_lsm_compaction_reclaimed_bytes",
    "Bytes reclaimed by gc compaction (superseded, corrupt, orphaned and "
    "evicted payloads).",
)
LSM_EVICTIONS_TOTAL = obs_metrics.counter(
    "repro_lsm_evictions_total",
    "Entries evicted by the size/TTL policy at compaction time, by kind.",
    ("kind",),
)
LSM_REPLAYED_RECORDS_TOTAL = obs_metrics.counter(
    "repro_lsm_replayed_log_records",
    "Log records replayed while (re)building shard indexes.",
)
LSM_ENTRIES = obs_metrics.gauge(
    "repro_lsm_entries", "Live entries in the disk tier (last occupancy scan)."
)
LSM_PAYLOAD_BYTES = obs_metrics.gauge(
    "repro_lsm_payload_bytes",
    "Payload bytes in the disk tier (last occupancy scan).",
)
LSM_SHARDS_USED = obs_metrics.gauge(
    "repro_lsm_shards_used",
    "Shard buckets holding at least one record (last occupancy scan).",
)
LSM_LOG_RECORDS = obs_metrics.gauge(
    "repro_lsm_log_records",
    "Uncompacted L0 log records across shards (last occupancy scan).",
)

#: Store layout version; version-1 (flat) directories are migrated on open,
#: anything else suspends the disk tier until :meth:`gc` compacts it.
FORMAT_VERSION = 2

#: The flat layout this tier knows how to migrate from.
FLAT_FORMAT_VERSION = 1

#: Number of shard buckets (two hex characters of the fingerprint).
NUM_SHARDS = 256

#: Level labels reported per entry: ``L0`` = still in the append log,
#: ``L1`` = folded into the sorted base manifest by compaction.
LEVEL_LOG = "L0"
LEVEL_BASE = "L1"

_SHARDS_DIR = "shards"
_FLAT_DATA_DIR = "data"
_LOG_NAME = "manifest.log"
_BASE_NAME = "manifest.base.json"
_SHARD_LOCK_NAME = ".shard.lock"
_TMP_MARKER = ".tmp-"

_HEX_DIGITS = set("0123456789abcdef")


def shard_of(fingerprint: str) -> str:
    """The two-character shard bucket of *fingerprint*.

    Real fingerprints are SHA-256 hex, so the bucket is literally the
    fingerprint's first two characters (uniformly distributed). Arbitrary
    strings (tests, ad-hoc keys) are hashed first so every fingerprint maps
    to one of the same 256 hex buckets.
    """
    prefix = fingerprint[:2].lower()
    if len(prefix) == 2 and set(prefix) <= _HEX_DIGITS:
        return prefix
    return hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()[:2]


def entry_key(kind: str, fingerprint: str, digest: str) -> str:
    """The sorted-index key of one artifact (binary-search ordered)."""
    return f"{fingerprint}\x00{kind}\x00{digest}"


@dataclass(frozen=True)
class StoreEntry:
    """One valid persisted artifact, as listed by :meth:`ArtifactStore.entries`."""

    kind: str
    fingerprint: str
    dataset: Optional[str]
    params: Dict[str, Any]
    created: float
    payload_bytes: int
    path: Path
    shard: str = ""
    level: str = LEVEL_LOG


@dataclass
class GCStats:
    """Outcome of one :meth:`ArtifactStore.gc` compaction pass."""

    kept_entries: int = 0
    removed_entries: int = 0
    removed_files: int = 0
    reclaimed_bytes: int = 0
    evicted_entries: int = 0
    compacted_shards: int = 0
    details: List[str] = field(default_factory=list)
    #: Per-shard compaction stats: ``{"ab": {"kept": .., "removed": ..,
    #: "evicted": .., "reclaimed_bytes": ..}}`` for every shard touched.
    shards: Dict[str, Dict[str, int]] = field(default_factory=dict)


#: Eviction priority per artifact kind: lower evicts first. Bulky cold
#: artifacts (projection CSR, per-sample null stacks, hyperwedge lists) go
#: before the hot small ones (26-float count vectors and profiles).
DEFAULT_KIND_PRIORITY: Dict[str, int] = {
    "projection": 0,
    "null-counts": 1,
    "hyperwedges": 2,
    "predict": 3,
    "count": 4,
    "profile": 5,
    # Lineage sidecars are a few dozen bytes but gate warm snapshot
    # chains: evicting one downgrades every descendant to a recount.
    "lineage": 6,
}

#: Priority of kinds absent from the table (between bulky and hot).
_UNKNOWN_KIND_PRIORITY = 1


@dataclass(frozen=True)
class EvictionPolicy:
    """Size/TTL policy applied by compaction (:meth:`LSMDiskTier.gc`).

    ``max_bytes`` bounds the store-wide payload footprint; ``ttl_seconds``
    maps artifact kinds to maximum ages. Both default to unbounded, so a
    policy-less store never drops a valid artifact. Victims for the byte
    budget are picked globally in :data:`DEFAULT_KIND_PRIORITY` order,
    oldest first within a kind.
    """

    max_bytes: Optional[int] = None
    ttl_seconds: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_bytes is not None and self.max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {self.max_bytes}")
        for kind, ttl in self.ttl_seconds.items():
            if ttl < 0:
                raise ValueError(f"ttl for {kind!r} must be >= 0, got {ttl}")

    @property
    def bounded(self) -> bool:
        """Whether this policy can ever evict anything."""
        return self.max_bytes is not None or bool(self.ttl_seconds)

    def ttl_for(self, kind: str) -> Optional[float]:
        """TTL of *kind* in seconds, ``None`` when the kind never expires."""
        value = self.ttl_seconds.get(kind)
        return None if value is None else float(value)

    def priority_for(self, kind: str) -> int:
        """Eviction priority of *kind* (lower evicts first)."""
        return DEFAULT_KIND_PRIORITY.get(kind, _UNKNOWN_KIND_PRIORITY)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "max_bytes": self.max_bytes,
            "ttl_seconds": dict(self.ttl_seconds),
        }


class _ShardState:
    """The in-memory sorted index of one shard's live records.

    ``keys`` is sorted, ``records`` is aligned with it; lookups are
    ``bisect`` binary searches, making reads O(log n) in the shard's entry
    count instead of a manifest scan. ``signature`` snapshots the stat of
    the base + log files the state was built from, so an index built by this
    process is invalidated the moment another process publishes a record.
    """

    __slots__ = ("keys", "records", "signature", "log_records", "base_records")

    def __init__(
        self,
        merged: Dict[str, Dict[str, Any]],
        signature: Tuple,
        log_records: int,
        base_records: int,
    ) -> None:
        self.keys: List[str] = sorted(merged)
        self.records: List[Dict[str, Any]] = [merged[key] for key in self.keys]
        self.signature = signature
        self.log_records = log_records
        self.base_records = base_records

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        index = bisect.bisect_left(self.keys, key)
        if index < len(self.keys) and self.keys[index] == key:
            return self.records[index]
        return None

    def upsert(self, key: str, record: Dict[str, Any]) -> None:
        index = bisect.bisect_left(self.keys, key)
        if index < len(self.keys) and self.keys[index] == key:
            self.records[index] = record
        else:
            self.keys.insert(index, key)
            self.records.insert(index, record)
        self.log_records += 1

    def payload_bytes(self) -> int:
        return sum(int(record.get("payload_bytes", 0)) for record in self.records)


class LSMDiskTier:
    """The log-structured persistent tier of one store directory.

    Thread-safe within a process (one internal lock guards the shard-state
    map) and safe across processes via per-shard :class:`FileLock`\\ s for
    writers; readers are lock-free and rely on atomic appends/renames plus
    last-writer-wins record merging.

    *on_corrupt* is called once per corrupt entry observed (checksum or
    identity mismatch) so the owning store can count it; *lock_timeout*
    bounds how long a write waits for its shard lock before reporting
    contention (the store then degrades the write to its memory tier).
    """

    def __init__(
        self,
        directory: Path,
        lock_timeout: float,
        policy: Optional[EvictionPolicy] = None,
        on_corrupt: Optional[Callable[[], None]] = None,
    ) -> None:
        self._directory = Path(directory)
        self._lock_timeout = float(lock_timeout)
        self.policy = policy or EvictionPolicy()
        self._on_corrupt = on_corrupt or (lambda: None)
        self._lock = threading.RLock()
        self._states: Dict[str, _ShardState] = {}
        self._shard_locks: Dict[str, FileLock] = {}

    # --------------------------------------------------------------- layout
    @property
    def directory(self) -> Path:
        return self._directory

    def shard_dir(self, shard: str) -> Path:
        return self._directory / _SHARDS_DIR / shard

    def shard_lock_path(self, shard: str) -> Path:
        return self.shard_dir(shard) / _SHARD_LOCK_NAME

    def payload_path(self, kind: str, fingerprint: str, digest: str) -> Path:
        return (
            self.shard_dir(shard_of(fingerprint))
            / fingerprint
            / f"{kind}-{digest}.npz"
        )

    def _shard_lock(self, shard: str) -> FileLock:
        # The lock file lives inside its shard directory, so the directory
        # must exist before the lock can be taken (raises OSError on an
        # unusable store path — absorbed by the caller like any disk error).
        self.shard_dir(shard).mkdir(parents=True, exist_ok=True)
        with self._lock:
            lock = self._shard_locks.get(shard)
            if lock is None:
                lock = self._shard_locks[shard] = FileLock(
                    self.shard_lock_path(shard)
                )
            return lock

    def _existing_shards(self) -> List[str]:
        root = self._directory / _SHARDS_DIR
        if not root.is_dir():
            return []
        return sorted(
            entry.name for entry in root.iterdir() if entry.is_dir()
        )

    # ---------------------------------------------------------------- reads
    def get(
        self, kind: str, fingerprint: str, digest: str, params: Mapping[str, Any]
    ) -> Optional[Tuple[Dict[str, np.ndarray], Dict[str, Any]]]:
        """Look up one artifact; ``(arrays, meta)`` or ``None`` on a miss.

        The lookup is a binary search over the shard's in-memory index; the
        payload is read (and checksum-verified) only on an index hit.
        Corruption of any flavor — identity mismatch, checksum failure,
        unloadable payload — reports through *on_corrupt* and reads as a
        clean miss, so the caller falls back to recomputation.
        """
        shard = shard_of(fingerprint)
        started = time.perf_counter()
        try:
            state = self._load_state(shard)
            record = state.lookup(entry_key(kind, fingerprint, digest))
            if record is None:
                return None
            if (
                record.get("kind") != kind
                or record.get("fingerprint") != fingerprint
                or record.get("params") != jsonify_params(params)
            ):
                self._on_corrupt()
                return None
            payload_path = self.shard_dir(shard) / str(record.get("payload", ""))
            try:
                data = payload_path.read_bytes()
            except OSError:
                return None
            if hashlib.sha256(data).hexdigest() != record.get("checksum"):
                self._on_corrupt()
                return None
            try:
                with np.load(io.BytesIO(data), allow_pickle=False) as bundle:
                    arrays = {name: bundle[name] for name in bundle.files}
            except (OSError, ValueError):
                self._on_corrupt()
                return None
            for array in arrays.values():
                array.setflags(write=False)
            return arrays, dict(record.get("meta", {}))
        finally:
            LSM_GET_SECONDS.observe(time.perf_counter() - started, shard=shard)

    def entries(self) -> List[StoreEntry]:
        """Every live persisted artifact, in sorted key order per shard."""
        result: List[StoreEntry] = []
        for shard in self._existing_shards():
            state = self._load_state(shard)
            for record in state.records:
                payload = self.shard_dir(shard) / str(record.get("payload", ""))
                if not payload.is_file():
                    continue
                result.append(
                    StoreEntry(
                        kind=str(record["kind"]),
                        fingerprint=str(record["fingerprint"]),
                        dataset=record.get("dataset"),
                        params=dict(record.get("params", {})),
                        created=float(record.get("created", 0.0)),
                        payload_bytes=int(record.get("payload_bytes", 0)),
                        path=payload,
                        shard=shard,
                        level=str(record.get("_level", LEVEL_BASE)),
                    )
                )
        return result

    def occupancy(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of shard/level occupancy (for ``/v1/stats``)."""
        shards: Dict[str, Dict[str, int]] = {}
        by_kind: Dict[str, Dict[str, int]] = {}
        total_entries = 0
        total_bytes = 0
        log_records = 0
        base_records = 0
        for shard in self._existing_shards():
            state = self._load_state(shard)
            entries = len(state.records)
            size = state.payload_bytes()
            total_entries += entries
            total_bytes += size
            log_records += state.log_records
            base_records += state.base_records
            if entries or state.log_records:
                shards[shard] = {
                    "entries": entries,
                    "payload_bytes": size,
                    "log_records": state.log_records,
                }
            for record in state.records:
                kind = str(record.get("kind", "?"))
                bucket = by_kind.setdefault(kind, {"entries": 0, "payload_bytes": 0})
                bucket["entries"] += 1
                bucket["payload_bytes"] += int(record.get("payload_bytes", 0))
        # Occupancy gauges track the latest scan (every describe()/stats
        # request refreshes them, so a scraped value is at most one scrape
        # interval stale).
        LSM_ENTRIES.set(total_entries)
        LSM_PAYLOAD_BYTES.set(total_bytes)
        LSM_SHARDS_USED.set(len(shards))
        LSM_LOG_RECORDS.set(log_records)
        return {
            "layout": "lsm",
            "num_shards": NUM_SHARDS,
            "shards_used": len(shards),
            "entries": total_entries,
            "payload_bytes": total_bytes,
            "log_records": log_records,
            "base_records": base_records,
            "by_kind": by_kind,
            "shards": shards,
            "policy": self.policy.as_dict(),
        }

    # --------------------------------------------------------------- writes
    def put(
        self,
        kind: str,
        fingerprint: str,
        digest: str,
        params: Mapping[str, Any],
        arrays: Mapping[str, np.ndarray],
        meta: Mapping[str, Any],
        dataset: Optional[str],
    ) -> bool:
        """Persist one artifact: payload file + one appended log record.

        Returns ``False`` on shard-lock contention (the caller degrades to
        its memory tier); raises :class:`OSError` on real disk failure (the
        caller absorbs it into ``write_errors``). The payload is written
        (atomically) *before* the record is appended, so a published record
        always points at a complete payload.
        """
        # Chaos hook: an injected disk failure is an OSError, absorbed by
        # ArtifactStore.put exactly like a full disk would be.
        faults.fire("store.disk_write", key=f"{kind}:{fingerprint}")
        shard = shard_of(fingerprint)
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **dict(arrays))
        data = buffer.getvalue()
        relative = f"{fingerprint}/{kind}-{digest}.npz"
        record = {
            "format_version": FORMAT_VERSION,
            "op": "put",
            "kind": kind,
            "fingerprint": fingerprint,
            "digest": digest,
            "params": jsonify_params(params),
            "meta": dict(meta),
            "dataset": dataset,
            "checksum": hashlib.sha256(data).hexdigest(),
            "payload": relative,
            "payload_bytes": len(data),
            "created": time.time(),
        }
        started = time.perf_counter()
        lock = self._shard_lock(shard)
        if not lock.acquire(timeout=self._lock_timeout):
            return False
        try:
            payload_path = self.shard_dir(shard) / relative
            payload_path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(payload_path, data)
            self._append_record(shard, record)
        finally:
            lock.release()
        LSM_PUT_SECONDS.observe(time.perf_counter() - started, shard=shard)
        return True

    def _append_record(self, shard: str, record: Dict[str, Any]) -> None:
        """Append one manifest record to the shard's log (caller holds the lock)."""
        faults.fire(
            "store.manifest_append",
            key=f"{record.get('kind')}:{record.get('fingerprint')}",
        )
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        log_path = self.shard_dir(shard) / _LOG_NAME
        fd = os.open(
            log_path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        # Keep this process's index current without a reload; the stored
        # signature is refreshed so *other* readers of the instance don't
        # reload either, while external writers still invalidate via stat.
        with self._lock:
            state = self._states.get(shard)
            if state is not None:
                live = dict(record)
                live["_level"] = LEVEL_LOG
                key = entry_key(
                    record["kind"], record["fingerprint"], record["digest"]
                )
                state.upsert(key, live)
                state.signature = self._signature(shard)

    # ----------------------------------------------------------- compaction
    def gc(self, stats: GCStats, verify_checksums: bool = True) -> GCStats:
        """Compact every shard: fold logs into bases, reclaim, evict.

        Each shard compacts under its own lock; a shard whose lock cannot be
        acquired is skipped (reported in ``details``) rather than risking a
        race with its writer. Eviction victims for the store-wide byte
        budget are chosen globally *before* the per-shard passes.
        """
        victims = self._eviction_victims()
        for shard in self._existing_shards():
            lock = self._shard_lock(shard)
            if not lock.acquire(timeout=self._lock_timeout):
                stats.details.append(
                    f"shard {shard}: lock contention, compaction skipped"
                )
                continue
            try:
                self._compact_shard(shard, stats, verify_checksums, victims)
            finally:
                lock.release()
        return stats

    def _eviction_victims(self) -> Dict[str, set]:
        """Keys to evict per shard, honoring TTLs and the global byte budget."""
        policy = self.policy
        victims: Dict[str, set] = {}
        if not policy.bounded:
            return victims
        now = time.time()
        survivors: List[Tuple[int, float, int, str, str]] = []
        total_bytes = 0
        for shard in self._existing_shards():
            state = self._load_state(shard)
            for key, record in zip(state.keys, state.records):
                kind = str(record.get("kind", "?"))
                created = float(record.get("created", 0.0))
                size = int(record.get("payload_bytes", 0))
                ttl = policy.ttl_for(kind)
                if ttl is not None and now - created > ttl:
                    victims.setdefault(shard, set()).add(key)
                    continue
                survivors.append(
                    (policy.priority_for(kind), created, size, shard, key)
                )
                total_bytes += size
        if policy.max_bytes is not None and total_bytes > policy.max_bytes:
            # Evict lowest priority first, oldest first within a priority,
            # until the surviving payloads fit the budget.
            survivors.sort()
            for _, _, size, shard, key in survivors:
                if total_bytes <= policy.max_bytes:
                    break
                victims.setdefault(shard, set()).add(key)
                total_bytes -= size
        return victims

    def _compact_shard(
        self,
        shard: str,
        stats: GCStats,
        verify_checksums: bool,
        victims: Dict[str, set],
    ) -> None:
        """Fold one shard's log into its base manifest (caller holds the lock)."""
        started = time.perf_counter()
        shard_dir = self.shard_dir(shard)
        shard_stats = {"kept": 0, "removed": 0, "evicted": 0, "reclaimed_bytes": 0}
        for path in sorted(shard_dir.glob("**/*")):
            if _TMP_MARKER in path.name and path.is_file():
                self._remove(path, stats, f"shard {shard}: leftover temp file")
        merged, _, _ = self._read_shard(shard)
        shard_victims = victims.get(shard, set())
        kept: Dict[str, Dict[str, Any]] = {}
        doomed_payloads: List[Path] = []
        for key in sorted(merged):
            record = merged[key]
            payload = shard_dir / str(record.get("payload", ""))
            reason: Optional[str] = None
            if key in shard_victims:
                reason = "evicted by policy"
                shard_stats["evicted"] += 1
                stats.evicted_entries += 1
                kind = str(record.get("kind", "?"))
                LSM_EVICTIONS_TOTAL.inc(kind=kind)
                log_event(
                    LOGGER,
                    "lsm.evict",
                    shard=shard,
                    kind=kind,
                    dataset=record.get("dataset"),
                    payload_bytes=int(record.get("payload_bytes", 0)),
                    age_seconds=round(
                        max(0.0, time.time() - float(record.get("created", 0.0))), 3
                    ),
                )
            elif not payload.is_file():
                reason = "missing payload"
            elif verify_checksums:
                try:
                    data = payload.read_bytes()
                except OSError:
                    data = None
                if data is None or (
                    hashlib.sha256(data).hexdigest() != record.get("checksum")
                ):
                    reason = "corrupt payload"
            if reason is None:
                kept[key] = record
                shard_stats["kept"] += 1
                stats.kept_entries += 1
            else:
                stats.removed_entries += 1
                shard_stats["removed"] += 1
                stats.details.append(
                    f"shard {shard}: {reason}: "
                    f"{Path(str(record.get('payload', '?'))).name}"
                )
                if payload.is_file():
                    doomed_payloads.append(payload)
        # Publish the new base atomically, then truncate the log, then delete
        # payloads: a crash after any single step loses nothing committed
        # (leftover log records merely repeat base records; undeleted
        # payloads are orphans reaped by the next pass).
        faults.fire("store.manifest_append", key=f"compact:{shard}:base")
        base_payload = json.dumps(
            {
                "format_version": FORMAT_VERSION,
                "records": [
                    {
                        name: value
                        for name, value in kept[key].items()
                        if not name.startswith("_")
                    }
                    for key in sorted(kept)
                ],
                "compacted": time.time(),
            },
            sort_keys=True,
        )
        atomic_write_bytes(
            shard_dir / _BASE_NAME, (base_payload + "\n").encode("utf-8")
        )
        faults.fire("store.manifest_append", key=f"compact:{shard}:log")
        try:
            (shard_dir / _LOG_NAME).unlink()
        except OSError:
            pass
        reclaimed_before = stats.reclaimed_bytes
        for payload in doomed_payloads:
            self._remove(payload, stats, None)
        # Orphaned payloads: files no live record references.
        live_payloads = {
            str(shard_dir / str(record.get("payload", ""))) for record in kept.values()
        }
        for payload in sorted(shard_dir.glob("*/*.npz")):
            if str(payload) not in live_payloads:
                self._remove(payload, stats, f"shard {shard}: orphaned payload")
        shard_stats["reclaimed_bytes"] = stats.reclaimed_bytes - reclaimed_before
        for bucket in sorted(shard_dir.iterdir()):
            try:
                if bucket.is_dir() and not any(bucket.iterdir()):
                    bucket.rmdir()
            except OSError:  # racing writer repopulated the bucket
                continue
        stats.compacted_shards += 1
        stats.shards[shard] = shard_stats
        with self._lock:
            self._states.pop(shard, None)
        elapsed = time.perf_counter() - started
        LSM_COMPACTION_SECONDS.observe(elapsed, shard=shard)
        LSM_COMPACTION_RECLAIMED_BYTES.inc(shard_stats["reclaimed_bytes"])
        log_event(
            LOGGER,
            "lsm.compaction",
            shard=shard,
            kept=shard_stats["kept"],
            removed=shard_stats["removed"],
            evicted=shard_stats["evicted"],
            reclaimed_bytes=shard_stats["reclaimed_bytes"],
            seconds=round(elapsed, 6),
        )

    def wipe(self, stats: GCStats) -> None:
        """Remove every shard (and legacy flat data) — the stale-manifest reset."""
        for root_name in (_SHARDS_DIR, _FLAT_DATA_DIR):
            root = self._directory / root_name
            if not root.is_dir():
                continue
            for path in sorted(root.glob("**/*"), reverse=True):
                if path.is_dir():
                    try:
                        path.rmdir()
                    except OSError:
                        pass
                    continue
                if path.suffix == ".npz":
                    stats.removed_entries += 1
                self._remove(path, stats, "stale-format store entry")
            try:
                root.rmdir()
            except OSError:
                pass
        with self._lock:
            self._states.clear()

    # ------------------------------------------------------------ migration
    def migrate_flat(self) -> int:
        """Fold a flat (format-1) layout into the sharded one, in place.

        Every valid v1 entry — parseable sidecar, present payload — becomes a
        log record in its fingerprint's shard, its payload moved (not
        copied). Invalid leftovers are deleted with the old ``data/`` tree.
        Returns the number of migrated entries. The caller holds the store's
        global lock and rewrites the top-level manifest afterwards.
        """
        data_root = self._directory / _FLAT_DATA_DIR
        if not data_root.is_dir():
            return 0
        migrated = 0
        for sidecar in sorted(data_root.glob("*/*.json")):
            record = self._read_flat_sidecar(sidecar)
            if record is None:
                continue
            payload = sidecar.with_suffix(".npz")
            kind = str(record["kind"])
            fingerprint = str(record["fingerprint"])
            params = record.get("params", {})
            digest = _flat_digest(sidecar.stem, kind)
            shard = shard_of(fingerprint)
            relative = f"{fingerprint}/{kind}-{digest}.npz"
            target = self.shard_dir(shard) / relative
            target.parent.mkdir(parents=True, exist_ok=True)
            try:
                size = payload.stat().st_size
                os.replace(payload, target)
            except OSError:
                continue
            self._append_record(
                shard,
                {
                    "format_version": FORMAT_VERSION,
                    "op": "put",
                    "kind": kind,
                    "fingerprint": fingerprint,
                    "digest": digest,
                    "params": jsonify_params(params),
                    "meta": dict(record.get("meta", {})),
                    "dataset": record.get("dataset"),
                    "checksum": str(record.get("checksum", "")),
                    "payload": relative,
                    "payload_bytes": int(size),
                    "created": float(record.get("created", time.time())),
                },
            )
            migrated += 1
        # The remaining files (invalid sidecars, orphaned payloads, temp
        # junk) would have been reaped by the old gc; drop the whole tree.
        for path in sorted(data_root.glob("**/*"), reverse=True):
            try:
                path.rmdir() if path.is_dir() else path.unlink()
            except OSError:
                pass
        try:
            data_root.rmdir()
        except OSError:
            pass
        return migrated

    @staticmethod
    def _read_flat_sidecar(path: Path) -> Optional[Dict[str, Any]]:
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict):
            return None
        if record.get("format_version") != FLAT_FORMAT_VERSION:
            return None
        if not all(key in record for key in ("kind", "fingerprint", "checksum")):
            return None
        if not path.with_suffix(".npz").is_file():
            return None
        return record

    # ------------------------------------------------------------- internal
    def _signature(self, shard: str) -> Tuple:
        """Stat snapshot of a shard's manifest files (index invalidation key)."""
        shard_dir = self.shard_dir(shard)
        parts = []
        for name in (_BASE_NAME, _LOG_NAME):
            try:
                stat = (shard_dir / name).stat()
                parts.append((stat.st_mtime_ns, stat.st_size))
            except OSError:
                parts.append(None)
        return tuple(parts)

    def _load_state(self, shard: str) -> _ShardState:
        signature = self._signature(shard)
        with self._lock:
            state = self._states.get(shard)
            if state is not None and state.signature == signature:
                return state
        merged, log_records, base_records = self._read_shard(shard)
        state = _ShardState(merged, signature, log_records, base_records)
        with self._lock:
            self._states[shard] = state
        return state

    def _read_shard(self, shard: str) -> Tuple[Dict[str, Dict[str, Any]], int, int]:
        """Fold a shard's base + log into the live record map (last wins)."""
        shard_dir = self.shard_dir(shard)
        merged: Dict[str, Dict[str, Any]] = {}
        base_records = 0
        try:
            base = json.loads(
                (shard_dir / _BASE_NAME).read_text(encoding="utf-8")
            )
            if (
                isinstance(base, dict)
                and base.get("format_version") == FORMAT_VERSION
            ):
                for record in base.get("records", []):
                    key = self._record_key(record)
                    if key is not None:
                        record["_level"] = LEVEL_BASE
                        merged[key] = record
                        base_records += 1
        except (OSError, ValueError):
            pass
        log_records = 0
        try:
            raw = (shard_dir / _LOG_NAME).read_bytes()
        except OSError:
            raw = b""
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue  # partial trailing record (crashed appender): skip
            if (
                not isinstance(record, dict)
                or record.get("format_version") != FORMAT_VERSION
            ):
                continue
            key = self._record_key(record)
            if key is None:
                continue
            log_records += 1
            if record.get("op") == "del":
                merged.pop(key, None)
            else:
                record["_level"] = LEVEL_LOG
                merged[key] = record
        if log_records:
            LSM_REPLAYED_RECORDS_TOTAL.inc(log_records)
        return merged, log_records, base_records

    @staticmethod
    def _record_key(record: Any) -> Optional[str]:
        if not isinstance(record, dict):
            return None
        kind = record.get("kind")
        fingerprint = record.get("fingerprint")
        digest = record.get("digest")
        if not (
            isinstance(kind, str)
            and isinstance(fingerprint, str)
            and isinstance(digest, str)
        ):
            return None
        return entry_key(kind, fingerprint, digest)

    @staticmethod
    def _remove(path: Path, stats: GCStats, reason: Optional[str]) -> bool:
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            return False
        stats.removed_files += 1
        stats.reclaimed_bytes += size
        if reason:
            stats.details.append(f"{reason}: {path.name}")
        return True


def _flat_digest(stem: str, kind: str) -> str:
    """Recover the params digest from a flat entry's ``<kind>-<digest>`` stem."""
    prefix = f"{kind}-"
    return stem[len(prefix):] if stem.startswith(prefix) else stem


def jsonify_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Round-trip params through JSON so stored and requested forms compare equal."""
    return json.loads(json.dumps(dict(params), sort_keys=True))


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write *data* to *path* atomically via a unique temp file + rename."""
    tmp = path.with_name(f"{path.name}{_TMP_MARKER}{os.getpid()}-{uuid.uuid4().hex}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
