"""Store warm-start benchmark: cold vs. warm engine construction + workflows.

Simulates the cross-process serving path: a *cold* engine pointed at an empty
:class:`~repro.store.ArtifactStore` directory builds the projection, runs
MoCHy-E and a seeded characteristic profile, persisting every artifact; a
*warm* engine — a fresh ``Hypergraph`` object and a fresh ``ArtifactStore``
instance over the same directory, exactly what a second CLI invocation gets —
repeats the same workflows and must be served from the persistent tier
without rebuilding anything, bit-identically. Writes ``BENCH_store.json`` at
the repo root so the warm-start trajectory is tracked from PR to PR.
Runnable as a pytest test (asserts the ≥5× warm-start gate) and as a script
(``python benchmarks/bench_store_warm_start.py``).
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import CountSpec, MotifEngine, ProfileSpec
from repro.generators import generate_uniform_random
from repro.store import ArtifactStore

#: Seeded benchmark hypergraph (matches bench_core_speed's scale ballpark:
#: big enough that cold projection+counting dominates, small enough for CI).
NUM_NODES = 240
NUM_HYPEREDGES = 480
MEAN_SIZE = 3.5
MAX_SIZE = 7
SEED = 42

#: The warmed workflows: exact counts plus a seeded 3-null profile.
COUNT_SPEC = CountSpec()
PROFILE_SPEC = ProfileSpec(num_random=3, seed=0)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"


def _fresh_hypergraph():
    """A brand-new Hypergraph object (fresh CSR/fingerprint caches each time)."""
    return generate_uniform_random(
        num_nodes=NUM_NODES,
        num_hyperedges=NUM_HYPEREDGES,
        mean_size=MEAN_SIZE,
        max_size=MAX_SIZE,
        seed=SEED,
    )


def _run_workflows(store_dir: Path):
    """Construct an engine over a fresh store instance and run both workflows.

    Returns per-workflow wall-clock seconds plus the results — engine
    construction and fingerprinting are charged to the count phase, exactly
    what a fresh process pays.
    """
    start = time.perf_counter()
    engine = MotifEngine(_fresh_hypergraph(), store=ArtifactStore(store_dir))
    count = engine.count(COUNT_SPEC)
    count_s = time.perf_counter() - start

    start = time.perf_counter()
    profile = engine.profile(PROFILE_SPEC)
    profile_s = time.perf_counter() - start
    return count_s, profile_s, count, profile


def run_store_warm_start_benchmark(result_path: Path = RESULT_PATH) -> dict:
    """Measure cold vs. warm serving against one store directory; write JSON."""
    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as tmp:
        store_dir = Path(tmp) / "store"
        cold_count_s, cold_profile_s, cold_count, cold_profile = _run_workflows(
            store_dir
        )
        warm_count_s, warm_profile_s, warm_count, warm_profile = _run_workflows(
            store_dir
        )
        num_artifacts = len(ArtifactStore(store_dir).entries())

    if not np.array_equal(
        warm_count.counts.to_array(), cold_count.counts.to_array()
    ) or not np.array_equal(warm_profile.values, cold_profile.values):
        raise AssertionError("warm-start results diverged from cold; benchmark void")
    if not (warm_count.from_cache and warm_profile.from_cache):
        raise AssertionError("warm run was not served from the store; benchmark void")

    payload = {
        "edges": NUM_HYPEREDGES,
        "nodes": NUM_NODES,
        "cold_count_s": cold_count_s,
        "warm_count_s": warm_count_s,
        "cold_profile_s": cold_profile_s,
        "warm_profile_s": warm_profile_s,
        "count_speedup": cold_count_s / warm_count_s if warm_count_s > 0 else float("inf"),
        "profile_speedup": (
            cold_profile_s / warm_profile_s if warm_profile_s > 0 else float("inf")
        ),
        "warm_count_tier": warm_count.cache_tier,
        "warm_profile_tier": warm_profile.cache_tier,
        "artifacts": num_artifacts,
    }
    result_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_bench_store_warm_start():
    from benchmarks.conftest import write_report

    payload = run_store_warm_start_benchmark()
    lines = [
        f"{'workflow':<22} {'cold (s)':>10} {'warm (s)':>10} {'speedup':>9}",
        f"{'count (MoCHy-E)':<22} {payload['cold_count_s']:>10.4f} "
        f"{payload['warm_count_s']:>10.4f} {payload['count_speedup']:>8.1f}x",
        f"{'profile (3 nulls)':<22} {payload['cold_profile_s']:>10.4f} "
        f"{payload['warm_profile_s']:>10.4f} {payload['profile_speedup']:>8.1f}x",
        f"{payload['artifacts']} artifacts persisted; warm tiers: "
        f"count={payload['warm_count_tier']}, profile={payload['warm_profile_tier']}",
    ]
    write_report("bench_store_warm_start", "\n".join(lines))
    assert payload["count_speedup"] >= 5.0
    assert payload["profile_speedup"] >= 5.0


if __name__ == "__main__":
    print(json.dumps(run_store_warm_start_benchmark(), indent=2))
