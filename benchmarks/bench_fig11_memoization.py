"""Figure 11 — on-the-fly projection under a memoization budget.

The paper studies MoCHy-A+ when the projected graph is built on the fly and
only a fraction of hyperedge neighborhoods can be memoized, showing that (a)
larger budgets make counting faster by avoiding recomputation and (b)
prioritizing high-degree hyperedges beats random or LRU retention. This
benchmark sweeps the budget (as a percentage of hyperedges) and the retention
policy, reporting recomputation counts and elapsed time.
"""

from __future__ import annotations

from repro.counting import count_approx_wedge_sampling
from repro.projection import (
    POLICY_DEGREE,
    POLICY_LRU,
    POLICY_RANDOM,
    LazyProjection,
    project,
)
from repro.utils.timer import Timer

from benchmarks.conftest import write_report

DATASET = "coauth-dblp-like"
BUDGET_PERCENTS = (0, 1, 10, 50, 100)
POLICIES = (POLICY_DEGREE, POLICY_LRU, POLICY_RANDOM)


def _run_with_budget(hypergraph, hyperwedges, budget, policy, num_samples):
    lazy = LazyProjection(hypergraph, budget=budget, policy=policy, seed=0)
    with Timer() as timer:
        count_approx_wedge_sampling(
            hypergraph,
            num_samples=num_samples,
            projection=lazy,
            hyperwedges=hyperwedges,
            seed=0,
        )
    return timer.elapsed, lazy.computations, lazy.cache_hits


def test_fig11_memoization_budget(benchmark, corpus):
    hypergraph, _ = corpus[DATASET]
    full = project(hypergraph)
    hyperwedges = full.hyperwedge_list()
    num_samples = max(1, int(0.4 * len(hyperwedges)))
    num_edges = hypergraph.num_hyperedges

    lines = [
        f"{'policy':<8} {'budget %':>9} {'budget (edges)':>15} {'time (s)':>9} "
        f"{'recomputations':>15} {'cache hits':>11}"
    ]
    per_policy_times = {}
    for policy in POLICIES:
        for percent in BUDGET_PERCENTS:
            budget = int(round(num_edges * percent / 100.0))
            elapsed, computations, hits = _run_with_budget(
                hypergraph, hyperwedges, budget, policy, num_samples
            )
            per_policy_times.setdefault(policy, {})[percent] = elapsed
            lines.append(
                f"{policy:<8} {percent:>9} {budget:>15} {elapsed:>9.3f} "
                f"{computations:>15} {hits:>11}"
            )

    # Benchmark the degree-policy run at a 10% budget (the paper's headline setting).
    benchmark.pedantic(
        _run_with_budget,
        args=(hypergraph, hyperwedges, num_edges // 10, POLICY_DEGREE, num_samples),
        rounds=1,
        iterations=1,
    )

    lines.append(
        "\nShape check vs. the paper's Figure 11: the zero-budget configuration does "
        "the most recomputation; increasing the budget reduces recomputation and time, "
        "and the degree policy retains the most useful neighborhoods."
    )
    write_report("fig11_memoization", "\n".join(lines))

    degree_times = per_policy_times[POLICY_DEGREE]
    # Full memoization must not recompute more than the zero-budget configuration.
    assert degree_times[100] <= degree_times[0] * 1.5
