"""Figure 6 — CP similarity matrices: h-motifs vs. network motifs.

The paper compares the dataset-by-dataset correlation matrix of h-motif CPs
against the matrix obtained from conventional network motifs counted on the
star-expansion bipartite graphs, and reports that h-motif CPs separate domains
much better (within/across gap 0.324 vs. 0.069). This benchmark regenerates
both matrices and both gaps on the synthetic corpus.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import (
    graph_similarity_matrix,
    network_motif_profile,
)
from repro.profile import similarity_matrix

from benchmarks.conftest import NUM_RANDOM, write_report


def _matrix_text(names, matrix):
    width = max(len(name) for name in names)
    lines = []
    for row_name, row in zip(names, matrix):
        cells = " ".join(f"{value:+.2f}" for value in row)
        lines.append(f"{row_name:<{width}} {cells}")
    return "\n".join(lines)


def _gap(matrix, domains):
    within, across = [], []
    for row in range(len(domains)):
        for column in range(row + 1, len(domains)):
            (within if domains[row] == domains[column] else across).append(
                matrix[row, column]
            )
    return float(np.mean(within) - np.mean(across))


def test_fig6_similarity_matrices(benchmark, corpus, corpus_profiles, corpus_domains):
    names = list(corpus_profiles)
    domains = [corpus_domains[name] for name in names]

    hmotif_matrix = similarity_matrix([corpus_profiles[name] for name in names])
    hmotif_gap = _gap(hmotif_matrix, domains)

    graph_profiles = {
        name: network_motif_profile(corpus[name][0], num_random=NUM_RANDOM, seed=0)
        for name in names
    }
    graph_matrix = graph_similarity_matrix([graph_profiles[name] for name in names])
    graph_gap = _gap(graph_matrix, domains)

    # Benchmark the graph-motif profile computation on the smallest dataset.
    smallest = min(names, key=lambda name: corpus[name][0].num_hyperedges)
    benchmark.pedantic(
        network_motif_profile,
        args=(corpus[smallest][0],),
        kwargs={"num_random": 1, "seed": 0},
        rounds=1,
        iterations=1,
    )

    lines = ["similarity matrix based on h-motif CPs:", _matrix_text(names, hmotif_matrix)]
    lines.append("")
    lines.append("similarity matrix based on network-motif CPs (star expansion):")
    lines.append(_matrix_text(names, graph_matrix))
    lines.append("")
    lines.append(f"h-motif CP gap (within - across)       : {hmotif_gap:.3f}")
    lines.append(f"network-motif CP gap (within - across) : {graph_gap:.3f}")
    lines.append(
        "\nShape check vs. the paper's Figure 6: the paper reports gaps of 0.324 "
        "(h-motifs) vs. 0.069 (network motifs); our synthetic corpus should show a "
        "positive h-motif gap. The network-motif baseline here uses exact counts of "
        "3/4-node patterns rather than Motivo's 3-5-node sampling, so its gap is only "
        "indicative."
    )
    write_report("fig6_similarity_matrices", "\n".join(lines))

    assert hmotif_gap > 0
