"""Table 3 — h-motif counts in real vs. randomized hypergraphs.

The paper reports, for one dataset per domain, the count of every h-motif in
the real hypergraph and in its randomizations, together with each motif's rank
difference (RD) and relative count (RC), and observes that the distributions
are clearly distinct (e.g. open "subset" motifs 17–18 are hugely
over-represented in the randomized hypergraphs). This benchmark regenerates
the 26-row table for one dataset per domain.
"""

from __future__ import annotations

from repro.analysis import compare_counts, format_report
from repro.randomization import random_motif_counts

from benchmarks.conftest import NUM_RANDOM, algorithm_for, write_report

#: One representative dataset per domain, as in the paper's Table 3.
REPRESENTATIVES = (
    "coauth-dblp-like",
    "contact-primary-like",
    "email-eu-like",
    "tags-math-like",
    "threads-math-like",
)


def test_table3_real_vs_random(benchmark, corpus, corpus_runs, corpus_domains):
    reports = []
    summary_lines = []
    for name in REPRESENTATIVES:
        hypergraph, domain = corpus[name]
        algorithm, ratio = algorithm_for(domain)
        null = random_motif_counts(
            hypergraph,
            num_random=NUM_RANDOM,
            algorithm=algorithm,
            sampling_ratio=ratio,
            seed=1,
        )
        report = compare_counts(corpus_runs[name].counts, null.mean_counts, dataset=name)
        reports.append(report)
        summary_lines.append(
            f"{name:<24} mean rank difference = {report.mean_rank_difference():.2f}  "
            f"over-represented motifs: {report.most_overrepresented(3)}  "
            f"under-represented motifs: {report.most_underrepresented(3)}"
        )

    # Benchmark the comparison step itself (counts are precomputed).
    benchmark(
        compare_counts,
        corpus_runs[REPRESENTATIVES[0]].counts,
        null.mean_counts,
    )

    text = "\n\n".join(format_report(report) for report in reports)
    text += "\n\nPer-dataset divergence summary\n" + "\n".join(summary_lines)
    text += (
        "\n\nShape check vs. the paper's Table 3: real and random count distributions "
        "differ (positive mean rank difference) in every domain."
    )
    write_report("table3_real_vs_random", text)

    for report in reports:
        assert report.mean_rank_difference() > 0
