"""Figures 1 and 5 — characteristic profiles per domain.

The paper plots the CP (normalized significance of the 26 h-motifs) of every
dataset and observes that CPs are similar within a domain and different across
domains. This benchmark prints the CP vectors grouped by domain and the
within/across-domain correlation summary, and benchmarks CP construction from
precomputed counts.
"""

from __future__ import annotations


from repro.analysis import leave_one_out_domain_accuracy
from repro.motifs.patterns import NUM_MOTIFS
from repro.profile import domain_separation, profile_from_counts

from benchmarks.conftest import write_report


def test_fig5_characteristic_profiles(benchmark, corpus_profiles, corpus_domains):
    profiles = list(corpus_profiles.values())
    domains = [corpus_domains[name] for name in corpus_profiles]

    # Benchmark CP construction (significance + normalization) from counts.
    sample = profiles[0]
    benchmark(
        profile_from_counts, sample.real_counts, sample.random_counts, sample.name
    )

    lines = []
    current_domain = None
    for name, profile in sorted(
        corpus_profiles.items(), key=lambda item: corpus_domains[item[0]]
    ):
        domain = corpus_domains[name]
        if domain != current_domain:
            lines.append(f"\n--- domain: {domain} ---")
            current_domain = domain
        values = " ".join(f"{profile.values[t]:+.2f}" for t in range(NUM_MOTIFS))
        lines.append(f"{name:<24} CP = [{values}]")

    separation = domain_separation(profiles, domains)
    accuracy = leave_one_out_domain_accuracy(profiles, domains)
    lines.append("")
    lines.append(
        f"within-domain mean CP correlation : {separation.within_mean:.3f}"
    )
    lines.append(
        f"across-domain mean CP correlation : {separation.across_mean:.3f}"
    )
    lines.append(f"gap (within - across)             : {separation.gap:.3f}")
    lines.append(f"leave-one-out domain accuracy     : {accuracy:.3f}")
    lines.append(
        "\nShape check vs. the paper's Figure 5: CPs should be more correlated within "
        "domains than across domains (positive gap), so the domain of a hypergraph can "
        "be identified from its CP."
    )
    write_report("fig5_characteristic_profiles", "\n".join(lines))

    assert separation.within_mean > separation.across_mean
    assert accuracy >= 0.5
