"""Figure 8 — speed vs. accuracy trade-off of MoCHy-E / MoCHy-A / MoCHy-A+.

The paper sweeps the sampling ratio of both approximate algorithms on the
datasets where MoCHy-E terminates in reasonable time and shows that MoCHy-A+
gives the best trade-off (up to 25× more accurate than MoCHy-A and up to 32×
faster than MoCHy-E with little loss). This benchmark reproduces the sweep on
three corpus datasets and reports elapsed time and relative error per point.
"""

from __future__ import annotations

import numpy as np

from repro.counting import (
    count_approx_edge_sampling,
    count_approx_wedge_sampling,
    count_exact,
)
from repro.projection import project
from repro.utils.timer import Timer

from benchmarks.conftest import write_report

#: Datasets small enough for repeated exact counting.
DATASETS = ("coauth-history-like", "contact-high-like", "contact-primary-like")

#: Sampling ratios swept for both approximate algorithms (the paper uses 2.5%..25%).
RATIOS = (0.1, 0.2, 0.3, 0.4)

#: Trials per (algorithm, ratio) point, averaged to smooth sampling noise.
TRIALS = 3


def test_fig8_speed_accuracy_tradeoff(benchmark, corpus):
    lines = [
        f"{'dataset':<24} {'algorithm':<10} {'ratio':>6} {'time (s)':>9} {'rel. error':>11}"
    ]
    summary = []
    for dataset_name in DATASETS:
        hypergraph, _ = corpus[dataset_name]
        projection = project(hypergraph)
        with Timer() as exact_timer:
            exact = count_exact(hypergraph, projection)
        lines.append(
            f"{dataset_name:<24} {'MoCHy-E':<10} {'-':>6} {exact_timer.elapsed:>9.3f} {0.0:>11.4f}"
        )
        num_edges = hypergraph.num_hyperedges
        num_wedges = projection.num_hyperwedges
        best = {}
        for label, counter, population in (
            ("MoCHy-A", count_approx_edge_sampling, num_edges),
            ("MoCHy-A+", count_approx_wedge_sampling, num_wedges),
        ):
            for ratio in RATIOS:
                samples = max(1, int(ratio * population))
                errors = []
                with Timer() as timer:
                    for trial in range(TRIALS):
                        estimate = counter(
                            hypergraph, samples, projection, seed=trial
                        )
                        errors.append(estimate.relative_error(exact))
                mean_time = timer.elapsed / TRIALS
                mean_error = float(np.mean(errors))
                best.setdefault(label, []).append((mean_time, mean_error))
                lines.append(
                    f"{dataset_name:<24} {label:<10} {ratio:>6.2f} {mean_time:>9.3f} "
                    f"{mean_error:>11.4f}"
                )
        # Compare the two samplers at the largest common ratio.
        a_error = best["MoCHy-A"][-1][1]
        aplus_error = best["MoCHy-A+"][-1][1]
        aplus_time = best["MoCHy-A+"][-1][0]
        summary.append(
            f"{dataset_name:<24} error(A)/error(A+) = "
            f"{a_error / max(aplus_error, 1e-12):.2f}x, "
            f"speedup of A+ over E = {exact_timer.elapsed / max(aplus_time, 1e-9):.2f}x"
        )

    # Benchmark one representative MoCHy-A+ run.
    hypergraph, _ = corpus[DATASETS[0]]
    projection = project(hypergraph)
    samples = max(1, int(0.2 * projection.num_hyperwedges))
    benchmark.pedantic(
        count_approx_wedge_sampling,
        args=(hypergraph, samples, projection),
        kwargs={"seed": 0},
        rounds=2,
        iterations=1,
    )

    lines.append("")
    lines.extend(summary)
    lines.append(
        "\nShape check vs. the paper's Figure 8: at equal sampling ratios MoCHy-A+ is "
        "typically more accurate than MoCHy-A, and it is several times faster than "
        "MoCHy-E with small relative error."
    )
    write_report("fig8_speed_accuracy", "\n".join(lines))
