"""Ablation — sensitivity of characteristic profiles to the null model.

The paper randomizes hypergraphs with the bipartite Chung–Lu model. This
ablation compares the CPs obtained with that null model against CPs obtained
with the simpler size-preserving slot-fill model, verifying that the domain
fingerprint is not an artefact of one particular randomization scheme.
"""

from __future__ import annotations

from repro.profile import characteristic_profile, profile_correlation
from repro.randomization import NULL_MODEL_CHUNG_LU, NULL_MODEL_SLOT_FILL

from benchmarks.conftest import NUM_RANDOM, algorithm_for, write_report

DATASETS = ("coauth-history-like", "contact-primary-like", "email-enron-like")


def test_ablation_null_models(benchmark, corpus, corpus_runs, corpus_domains):
    lines = [f"{'dataset':<24} {'CP correlation (Chung-Lu vs slot-fill)':>40}"]
    correlations = []
    for name in DATASETS:
        hypergraph, domain = corpus[name]
        algorithm, ratio = algorithm_for(domain)
        profiles = {}
        for null_model in (NULL_MODEL_CHUNG_LU, NULL_MODEL_SLOT_FILL):
            profiles[null_model] = characteristic_profile(
                hypergraph,
                num_random=NUM_RANDOM,
                algorithm=algorithm,
                sampling_ratio=ratio,
                null_model=null_model,
                seed=0,
                real_counts=corpus_runs[name].counts,
            )
        correlation = profile_correlation(
            profiles[NULL_MODEL_CHUNG_LU].values, profiles[NULL_MODEL_SLOT_FILL].values
        )
        correlations.append(correlation)
        lines.append(f"{name:<24} {correlation:>40.3f}")

    # Benchmark one slot-fill CP computation.
    hypergraph, domain = corpus[DATASETS[0]]
    algorithm, ratio = algorithm_for(domain)
    benchmark.pedantic(
        characteristic_profile,
        args=(hypergraph,),
        kwargs={
            "num_random": 1,
            "algorithm": algorithm,
            "sampling_ratio": ratio,
            "null_model": NULL_MODEL_SLOT_FILL,
            "seed": 2,
            "real_counts": corpus_runs[DATASETS[0]].counts,
        },
        rounds=1,
        iterations=1,
    )

    lines.append(
        "\nAblation conclusion: CPs computed under the two null models should be "
        "positively correlated, i.e. the domain fingerprints are robust to the choice "
        "of degree/size-preserving randomization."
    )
    write_report("ablation_null_models", "\n".join(lines))

    assert all(correlation > 0 for correlation in correlations)
