"""Figure 10 — parallel speedup of MoCHy-E and MoCHy-A+.

The paper reports near-linear speedups when running MoCHy with multiple
threads (5.4× for MoCHy-E and 6.7× for MoCHy-A+ at 8 threads). This benchmark
measures wall-clock time of the process-parallel drivers at 1, 2 and 4 workers
on a mid-size dataset and reports the speedups. Pure-Python workers pay a
pickling/start-up cost the C++/OpenMP implementation does not, so speedups are
sub-linear but should grow with the worker count for the exact counter.
"""

from __future__ import annotations

from repro.counting import (
    count_approx_wedge_sampling_parallel,
    count_exact_parallel,
)
from repro.utils.timer import Timer

from benchmarks.conftest import write_report

WORKER_COUNTS = (1, 2, 4)
DATASET = "coauth-geology-like"


def test_fig10_parallel_speedup(benchmark, corpus):
    hypergraph, _ = corpus[DATASET]
    lines = [f"{'algorithm':<10} {'workers':>8} {'time (s)':>9} {'speedup':>8}"]

    exact_times = {}
    for workers in WORKER_COUNTS:
        with Timer() as timer:
            count_exact_parallel(hypergraph, num_workers=workers)
        exact_times[workers] = timer.elapsed
        lines.append(
            f"{'MoCHy-E':<10} {workers:>8} {timer.elapsed:>9.3f} "
            f"{exact_times[1] / timer.elapsed:>8.2f}"
        )

    sampling_times = {}
    num_samples = 400
    for workers in WORKER_COUNTS:
        with Timer() as timer:
            count_approx_wedge_sampling_parallel(
                hypergraph, num_samples=num_samples, num_workers=workers, seed=0
            )
        sampling_times[workers] = timer.elapsed
        lines.append(
            f"{'MoCHy-A+':<10} {workers:>8} {timer.elapsed:>9.3f} "
            f"{sampling_times[1] / timer.elapsed:>8.2f}"
        )

    # Benchmark the 2-worker exact counter as the representative measurement.
    benchmark.pedantic(
        count_exact_parallel,
        args=(hypergraph,),
        kwargs={"num_workers": 2},
        rounds=1,
        iterations=1,
    )

    lines.append(
        "\nShape check vs. the paper's Figure 10: multi-worker runs should not be "
        "slower than single-worker runs by more than the process start-up overhead, "
        "and the exact counter should gain from additional workers on large inputs. "
        "(The paper's 5-7x speedups at 8 threads rely on shared-memory OpenMP threads; "
        "Python process workers re-project the hypergraph, so observed speedups are "
        "smaller at this scale.)"
    )
    write_report("fig10_parallel_speedup", "\n".join(lines))

    # Weak shape assertion: parallel exact counting is not pathologically slower.
    assert exact_times[4] < exact_times[1] * 3
