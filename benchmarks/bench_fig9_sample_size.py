"""Figure 9 — effect of the number of hyperwedge samples on estimated CPs.

The paper shows that CPs estimated with MoCHy-A+ from a small fraction of
hyperwedges are nearly identical to exact CPs. This benchmark sweeps the
sampling ratio on three datasets and reports the correlation between the
sampled and exact CPs.
"""

from __future__ import annotations

from repro.profile import characteristic_profile, profile_correlation

from benchmarks.conftest import NUM_RANDOM, write_report

DATASETS = ("coauth-history-like", "contact-primary-like", "contact-high-like")
RATIOS = (0.05, 0.1, 0.25, 0.5)


def test_fig9_cp_vs_sample_size(benchmark, corpus, corpus_profiles):
    lines = [f"{'dataset':<24} {'ratio':>6} {'CP correlation with exact':>27}"]
    worst = 1.0
    for dataset_name in DATASETS:
        hypergraph, _ = corpus[dataset_name]
        exact_profile = corpus_profiles[dataset_name]
        for ratio in RATIOS:
            sampled_profile = characteristic_profile(
                hypergraph,
                num_random=NUM_RANDOM,
                algorithm="mochy-a+",
                sampling_ratio=ratio,
                seed=0,
            )
            correlation = profile_correlation(
                exact_profile.values, sampled_profile.values
            )
            worst = min(worst, correlation) if ratio >= 0.25 else worst
            lines.append(f"{dataset_name:<24} {ratio:>6.2f} {correlation:>27.3f}")

    # Benchmark CP estimation at the smallest ratio on one dataset.
    hypergraph, _ = corpus[DATASETS[0]]
    benchmark.pedantic(
        characteristic_profile,
        args=(hypergraph,),
        kwargs={
            "num_random": 1,
            "algorithm": "mochy-a+",
            "sampling_ratio": 0.05,
            "seed": 1,
        },
        rounds=1,
        iterations=1,
    )

    lines.append(
        "\nShape check vs. the paper's Figure 9: the CP correlation approaches 1 as the "
        "sampling ratio grows, and is already high at small ratios."
    )
    write_report("fig9_cp_vs_sample_size", "\n".join(lines))

    assert worst > 0.6
