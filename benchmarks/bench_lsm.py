"""LSM storage-engine benchmark: sharded log-structured tier vs. flat manifest.

Compares the :mod:`repro.store.lsm` disk tier against an in-file reimplementation
of the design it replaced — one global manifest rewritten whole on every put,
one store-wide lock, linear-scan lookups — on the two axes the sharded layout
was built for:

* **Cold lookup latency**: a fresh store instance (what every new CLI run or
  serving worker is) resolves one artifact. The flat design must parse the
  entire N-record manifest first; the LSM tier loads only the target
  fingerprint's shard (~N/256 records) and binary-searches it.
* **Multi-writer put throughput**: 4 processes persisting disjoint artifacts.
  Flat writers serialize on the global lock and each rewrite is O(N); LSM
  writers append one O(1) record under their own shard locks.

Writes ``BENCH_lsm.json`` at the repo root. Runnable as a pytest test
(asserts the >=3x gate on both axes at N=2000) and as a script
(``python benchmarks/bench_lsm.py``).
"""

from __future__ import annotations

import hashlib
import io
import json
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.store import ArtifactStore, FileLock
from repro.store.fingerprint import params_digest
from repro.store.lsm import atomic_write_bytes, jsonify_params

#: Artifacts resident in each store when latency/throughput are measured.
NUM_ARTIFACTS = 2000

#: Concurrent writer processes in the put-throughput phase.
NUM_WRITERS = 4

#: Puts per writer in the timed throughput phase (on top of the N resident).
PUTS_PER_WRITER = 50

#: Cold lookups timed per store (each on a fresh store instance).
NUM_LOOKUPS = 40

#: The acceptance gate: the sharded engine must beat flat by this factor.
GATE = 3.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_lsm.json"


def _fingerprint(index: int) -> str:
    """A realistic SHA-256-style fingerprint, uniform over the shard space."""
    return hashlib.sha256(f"bench-lsm-{index}".encode("ascii")).hexdigest()


def _arrays(index: int) -> Dict[str, np.ndarray]:
    return {"values": np.full(26, float(index))}


class FlatManifestStore:
    """The pre-LSM design, reduced to its storage essentials.

    One JSON manifest lists every record; a put rewrites the whole file under
    the single store-wide lock, a get parses it and scans linearly. Payload
    handling (compressed ``.npz`` + SHA-256 checksum) matches the real store
    so the comparison isolates manifest/locking architecture only.
    """

    def __init__(self, directory, lock_timeout: float = 60.0) -> None:
        self._directory = Path(directory)
        self._data = self._directory / "data"
        self._data.mkdir(parents=True, exist_ok=True)
        self._manifest = self._directory / "manifest.json"
        self._lock = FileLock(self._directory / ".store.lock")
        self._lock_timeout = lock_timeout

    def _records(self) -> list:
        try:
            payload = json.loads(self._manifest.read_text(encoding="utf-8"))
            return list(payload["records"])
        except (OSError, ValueError, KeyError):
            return []

    def put(
        self,
        kind: str,
        fingerprint: str,
        params: Mapping[str, Any],
        arrays: Mapping[str, np.ndarray],
    ) -> bool:
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **dict(arrays))
        data = buffer.getvalue()
        digest = params_digest(params)
        name = f"{fingerprint}-{kind}-{digest}.npz"
        record = {
            "kind": kind,
            "fingerprint": fingerprint,
            "digest": digest,
            "params": jsonify_params(params),
            "checksum": hashlib.sha256(data).hexdigest(),
            "payload": name,
        }
        if not self._lock.acquire(timeout=self._lock_timeout):
            return False
        try:
            atomic_write_bytes(self._data / name, data)
            records = [
                existing
                for existing in self._records()
                if (existing["kind"], existing["fingerprint"], existing["digest"])
                != (kind, fingerprint, digest)
            ]
            records.append(record)
            atomic_write_bytes(
                self._manifest,
                json.dumps({"records": records}).encode("utf-8"),
            )
        finally:
            self._lock.release()
        return True

    def get(
        self, kind: str, fingerprint: str, params: Mapping[str, Any]
    ) -> Optional[Dict[str, np.ndarray]]:
        digest = params_digest(params)
        for record in self._records():  # linear scan of the whole manifest
            if (record["kind"], record["fingerprint"], record["digest"]) != (
                kind,
                fingerprint,
                digest,
            ):
                continue
            try:
                data = (self._data / record["payload"]).read_bytes()
            except OSError:
                return None
            if hashlib.sha256(data).hexdigest() != record["checksum"]:
                return None
            with np.load(io.BytesIO(data), allow_pickle=False) as bundle:
                return {array: bundle[array] for array in bundle.files}
        return None


def _lsm_store(directory) -> ArtifactStore:
    # memory_items=0: every get exercises the disk tier, not the LRU.
    return ArtifactStore(directory, memory_items=0)


def _seed_flat(directory, count: int) -> None:
    store = FlatManifestStore(directory)
    for index in range(count):
        store.put("count", _fingerprint(index), {"p": index}, _arrays(index))


def _seed_lsm(directory, count: int) -> None:
    store = _lsm_store(directory)
    for index in range(count):
        store.put("count", _fingerprint(index), {"p": index}, _arrays(index))
    assert store.stats.write_errors == 0 and store.stats.lock_contention == 0


def _flat_writer(directory: str, writer_id: int, count: int) -> float:
    store = FlatManifestStore(directory)
    start = time.perf_counter()
    for op in range(count):
        index = 1_000_000 + writer_id * count + op
        assert store.put("count", _fingerprint(index), {"p": index}, _arrays(index))
    return time.perf_counter() - start


def _lsm_writer(directory: str, writer_id: int, count: int) -> float:
    store = _lsm_store(directory)
    start = time.perf_counter()
    for op in range(count):
        index = 1_000_000 + writer_id * count + op
        store.put("count", _fingerprint(index), {"p": index}, _arrays(index))
    elapsed = time.perf_counter() - start
    assert store.stats.write_errors == 0 and store.stats.lock_contention == 0
    return elapsed


def _time_cold_lookups(make_store, directory, flavor: str) -> float:
    """Mean seconds for a fresh store instance to resolve one artifact."""
    # Spread probes over the key space so every lookup lands in a different
    # shard (LSM) / a different manifest position (flat).
    indices = np.linspace(0, NUM_ARTIFACTS - 1, NUM_LOOKUPS, dtype=int)
    start = time.perf_counter()
    for index in indices:
        store = make_store(directory)
        hit = store.get("count", _fingerprint(int(index)), {"p": int(index)})
        assert hit is not None, f"{flavor} lookup missed artifact {index}"
    return (time.perf_counter() - start) / len(indices)


def _throughput(writer, directory) -> float:
    """Aggregate puts/second across NUM_WRITERS concurrent processes."""
    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=NUM_WRITERS) as pool:
        futures = [
            pool.submit(writer, str(directory), writer_id, PUTS_PER_WRITER)
            for writer_id in range(NUM_WRITERS)
        ]
        for future in futures:
            future.result(timeout=600)
    elapsed = time.perf_counter() - start
    return (NUM_WRITERS * PUTS_PER_WRITER) / elapsed


def run_lsm_benchmark(result_path: Path = RESULT_PATH) -> dict:
    """Seed both stores with N artifacts, measure both axes, write JSON."""
    with tempfile.TemporaryDirectory(prefix="repro-lsm-bench-") as tmp:
        flat_dir = Path(tmp) / "flat"
        lsm_dir = Path(tmp) / "lsm"
        _seed_flat(flat_dir, NUM_ARTIFACTS)
        _seed_lsm(lsm_dir, NUM_ARTIFACTS)

        flat_lookup_s = _time_cold_lookups(FlatManifestStore, flat_dir, "flat")
        lsm_lookup_s = _time_cold_lookups(_lsm_store, lsm_dir, "lsm")

        flat_put_rate = _throughput(_flat_writer, flat_dir)
        lsm_put_rate = _throughput(_lsm_writer, lsm_dir)

        occupancy = _lsm_store(lsm_dir).occupancy()

    payload = {
        "artifacts": NUM_ARTIFACTS,
        "writers": NUM_WRITERS,
        "puts_per_writer": PUTS_PER_WRITER,
        "lookups": NUM_LOOKUPS,
        "flat_lookup_ms": flat_lookup_s * 1e3,
        "lsm_lookup_ms": lsm_lookup_s * 1e3,
        "lookup_speedup": (
            flat_lookup_s / lsm_lookup_s if lsm_lookup_s else float("inf")
        ),
        "flat_put_per_s": flat_put_rate,
        "lsm_put_per_s": lsm_put_rate,
        "put_speedup": (
            lsm_put_rate / flat_put_rate if flat_put_rate else float("inf")
        ),
        "shards_used": occupancy["shards_used"],
        "log_records": occupancy["log_records"],
    }
    result_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_bench_lsm():
    from benchmarks.conftest import write_report

    payload = run_lsm_benchmark()
    lines = [
        f"N={payload['artifacts']} artifacts, {payload['writers']} writer "
        f"processes, {payload['lookups']} cold lookups",
        f"{'axis':<24} {'flat':>12} {'lsm':>12} {'speedup':>9}",
        f"{'cold lookup (ms)':<24} {payload['flat_lookup_ms']:>12.3f} "
        f"{payload['lsm_lookup_ms']:>12.3f} {payload['lookup_speedup']:>8.1f}x",
        f"{'put throughput (1/s)':<24} {payload['flat_put_per_s']:>12.1f} "
        f"{payload['lsm_put_per_s']:>12.1f} {payload['put_speedup']:>8.1f}x",
        f"{payload['shards_used']} shards used, "
        f"{payload['log_records']} L0 records pending compaction",
    ]
    write_report("bench_lsm", "\n".join(lines))
    assert payload["lookup_speedup"] >= GATE
    assert payload["put_speedup"] >= GATE


if __name__ == "__main__":
    print(json.dumps(run_lsm_benchmark(), indent=2))
