"""Parallel-serving benchmark: a mixed cold batch, serial vs. process workers.

Simulates the multi-tenant serving path the executor layer was built for: a
batch of cold requests over several distinct datasets submitted through one
:class:`~repro.store.serve.EngineServer`, each backend pointed at its own
fresh store directory. The ``process`` backend with four workers must beat
the ``serial`` backend by the gate factor **and** return bit-identical
results — parallelism that changed a single count would be a regression, not
a speedup. The ``thread`` backend is measured too (informational: its
speedup depends on how much of the kernels runs outside the GIL). Writes
``BENCH_serve.json`` at the repo root so the serving-throughput trajectory
is tracked from PR to PR. Runnable as a pytest test (asserts the ≥2× gate)
and as a script (``python benchmarks/bench_serve_parallel.py``).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import CountSpec
from repro.generators import generate_uniform_random
from repro.store import ArtifactStore
from repro.store.serve import EngineServer, ServeRequest

#: The mixed batch: one cold exact count per distinct dataset. Sizes match
#: the store benchmark's ballpark — big enough that projection + MoCHy-E
#: dominates executor overhead, small enough for CI.
NUM_DATASETS = 8
NUM_NODES = 500
NUM_HYPEREDGES = 1200
MEAN_SIZE = 3.5
MAX_SIZE = 7

#: Workers for the parallel backends (the gate's configuration).
NUM_WORKERS = 4

#: Required speedup of process-parallel over serial execution.
GATE_SPEEDUP = 2.0

#: Usable cores the ≥2x gate needs before it is meaningful: with four
#: workers the ideal speedup is min(workers, cores), so anything below four
#: cores leaves no headroom over the gate (and one core makes parallel
#: *slower*, by exactly the overhead the benchmark exists to bound).
GATE_MIN_CPUS = 4

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def usable_cpus() -> int:
    """CPUs this process may actually schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _mixed_batch():
    """Fresh hypergraph objects (fresh CSR/fingerprint caches) per run."""
    return [
        ServeRequest(
            generate_uniform_random(
                num_nodes=NUM_NODES,
                num_hyperedges=NUM_HYPEREDGES,
                mean_size=MEAN_SIZE,
                max_size=MAX_SIZE,
                seed=seed,
            ),
            CountSpec(),
        )
        for seed in range(NUM_DATASETS)
    ]


def _run(backend, workers, store_dir: Path):
    """Serve one cold batch on *backend*; (wall seconds, results)."""
    requests = _mixed_batch()
    server = EngineServer(store=ArtifactStore(store_dir))
    start = time.perf_counter()
    results = server.submit(requests, workers=workers, backend=backend)
    return time.perf_counter() - start, results


def run_serve_parallel_benchmark(result_path: Path = RESULT_PATH) -> dict:
    """Measure serial vs. thread vs. process serving of one cold batch."""
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        root = Path(tmp)
        serial_s, serial_results = _run("serial", 1, root / "serial")
        thread_s, thread_results = _run("thread", NUM_WORKERS, root / "thread")
        process_s, process_results = _run("process", NUM_WORKERS, root / "process")

    for candidate in (thread_results, process_results):
        for expected, actual in zip(serial_results, candidate):
            if not np.array_equal(
                actual.counts.to_array(), expected.counts.to_array()
            ):
                raise AssertionError(
                    "parallel results diverged from serial; benchmark void"
                )

    payload = {
        "datasets": NUM_DATASETS,
        "nodes": NUM_NODES,
        "edges": NUM_HYPEREDGES,
        "workers": NUM_WORKERS,
        "cpus": usable_cpus(),
        "serial_s": serial_s,
        "thread_s": thread_s,
        "process_s": process_s,
        "thread_speedup": serial_s / thread_s if thread_s > 0 else float("inf"),
        "process_speedup": serial_s / process_s if process_s > 0 else float("inf"),
        "gate_speedup": GATE_SPEEDUP,
    }
    result_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_bench_serve_parallel():
    import pytest

    from benchmarks.conftest import write_report

    payload = run_serve_parallel_benchmark()
    lines = [
        f"mixed cold batch: {payload['datasets']} datasets x exact count "
        f"({payload['edges']} hyperedges each), {payload['workers']} workers "
        f"on {payload['cpus']} cpus",
        f"{'backend':<10} {'seconds':>9} {'speedup':>9}",
        f"{'serial':<10} {payload['serial_s']:>9.3f} {'1.0x':>9}",
        f"{'thread':<10} {payload['thread_s']:>9.3f} "
        f"{payload['thread_speedup']:>8.2f}x",
        f"{'process':<10} {payload['process_s']:>9.3f} "
        f"{payload['process_speedup']:>8.2f}x",
        "parallel counts verified bit-identical to serial",
    ]
    write_report("bench_serve_parallel", "\n".join(lines))
    if payload["cpus"] < GATE_MIN_CPUS:
        # Parity was still verified above; only the throughput gate needs
        # real cores (CI hardware has them).
        pytest.skip(
            f"speedup gate needs >= {GATE_MIN_CPUS} usable cpus, "
            f"have {payload['cpus']}"
        )
    assert payload["process_speedup"] >= GATE_SPEEDUP, (
        f"process backend speedup {payload['process_speedup']:.2f}x "
        f"below the {GATE_SPEEDUP}x gate"
    )


if __name__ == "__main__":
    print(json.dumps(run_serve_parallel_benchmark(), indent=2))
