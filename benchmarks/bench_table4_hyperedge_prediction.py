"""Table 4 — hyperedge prediction with h-motif features.

The paper trains five classifier families on three feature sets (HM26, HM7,
HC) to distinguish real from fake hyperedges and finds that the h-motif based
features give consistently better accuracy and AUC than the hand-crafted
baseline (HM26 > HM7 > HC). This benchmark regenerates the full grid on a
synthetic temporal co-authorship hypergraph.
"""

from __future__ import annotations


from repro.generators import generate_temporal_coauthorship
from repro.ml import LogisticRegression
from repro.prediction import FEATURE_SETS, build_prediction_dataset, run_prediction_experiment

from benchmarks.conftest import write_report


def test_table4_hyperedge_prediction(benchmark):
    temporal = generate_temporal_coauthorship(
        num_years=5,
        initial_authors=150,
        initial_papers=100,
        seed=7,
    )
    years = temporal.timestamps()
    result = run_prediction_experiment(
        temporal,
        context_start=years[0],
        context_end=years[-2],
        test_start=years[-1],
        test_end=years[-1],
        max_positives=80,
        seed=0,
    )

    # Benchmark the feature-extraction + training step on a reduced dataset.
    def _small_run():
        dataset = build_prediction_dataset(
            temporal,
            context_start=years[0],
            context_end=years[-2],
            test_start=years[-1],
            test_end=years[-1],
            max_positives=25,
            seed=1,
        )
        model = LogisticRegression(num_iterations=100)
        model.fit(dataset.features_train["HM26"], dataset.labels_train)
        return model

    benchmark.pedantic(_small_run, rounds=1, iterations=1)

    header = f"{'classifier':<22} {'features':<6} {'ACC':>7} {'AUC':>7}"
    lines = [header, "-" * len(header)]
    for classifier, feature_set, acc, auc in result.as_rows():
        lines.append(f"{classifier:<22} {feature_set:<6} {acc:>7.3f} {auc:>7.3f}")
    lines.append("")
    for metric in ("accuracy", "auc"):
        means = {fs: result.mean_metric(fs, metric) for fs in FEATURE_SETS}
        ordering = " >= ".join(sorted(means, key=means.get, reverse=True))
        lines.append(
            f"mean {metric.upper():>3} per feature set: "
            + ", ".join(f"{fs}={value:.3f}" for fs, value in means.items())
            + f"   (observed ordering: {ordering})"
        )
    lines.append(
        "\nShape check vs. the paper's Table 4: the paper finds HM26 > HM7 > HC for "
        "both metrics. On the synthetic temporal co-authorship data the h-motif "
        "features are informative (AUC above chance) and HM26 >= HM7, but the "
        "degree-based HC baseline is unrealistically strong because fake hyperedges "
        "swap in uniformly random (hence low-degree) nodes; see EXPERIMENTS.md for the "
        "discussion of this deviation."
    )
    write_report("table4_hyperedge_prediction", "\n".join(lines))

    assert result.mean_metric("HM26", "auc") > 0.5
    assert result.mean_metric("HM26", "auc") >= result.mean_metric("HM7", "auc") - 0.05
