"""Incremental evolution benchmark: delta engine vs. from-scratch chains.

Counts a 20-snapshot cumulative chain (a ~2500-hyperedge base growing by
~10 hyperedges per boundary) twice through ``MotifEngine.evolve``:

* **incremental** (the default serving path): the base is counted once,
  then every boundary re-counts only the anchors its delta touched via
  :mod:`repro.fastcore.delta`, merging into the running exact counts;
* **from-scratch** (``incremental=False``): every boundary rebuilds its
  cumulative graph and counts it whole — the pre-delta-engine behavior.

The acceptance gate is twofold: the incremental chain must be **>= 3x
faster**, and every snapshot's counts must be **bit-identical** between
the two paths (the delta engine's correctness contract — float64 bincount
sums are exact integers well below 2^53).

Writes ``BENCH_evolve.json`` at the repo root. Runnable as a pytest test
and as a script (``python benchmarks/bench_evolve.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.api import EvolveSpec, MotifEngine
from repro.hypergraph.builders import TemporalHypergraph
from repro.utils.rng import ensure_rng

#: Hyperedges in the base snapshot (boundary 0).
BASE_EDGES = 2500

#: Chain boundaries after the base.
NUM_SNAPSHOTS = 20

#: Hyperedges added per boundary.
DELTA_EDGES = 10

#: Node population the hyperedges draw from. Kept sparse relative to the
#: edge count so each delta stays local (a handful of affected anchors),
#: the regime the delta engine targets — dense overlap degenerates every
#: delta into a near-full recount and erases the incremental advantage.
NUM_NODES = 4000

#: The acceptance gate: incremental must beat from-scratch by this factor.
GATE = 3.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_evolve.json"


def _random_edges(rng, count, seen, max_size=5):
    """*count* distinct random hyperedges not present in *seen*."""
    edges = []
    while len(edges) < count:
        size = int(rng.integers(2, max_size + 1))
        edge = frozenset(
            int(node) for node in rng.choice(NUM_NODES, size=size, replace=False)
        )
        if edge not in seen:
            seen.add(edge)
            edges.append(edge)
    return edges


def build_chain() -> TemporalHypergraph:
    """The benchmark chain as a temporal hypergraph (one stamp per boundary)."""
    rng = ensure_rng(97)
    seen: set = set()
    pairs = [(0, edge) for edge in _random_edges(rng, BASE_EDGES, seen)]
    for boundary in range(1, NUM_SNAPSHOTS + 1):
        pairs.extend(
            (boundary, edge) for edge in _random_edges(rng, DELTA_EDGES, seen)
        )
    return TemporalHypergraph(pairs, name="bench-evolve-chain")


def run_evolve_benchmark(result_path: Path = RESULT_PATH) -> dict:
    """Time both paths over the same chain, pin parity, write JSON."""
    temporal = build_chain()

    fast = MotifEngine(temporal, store=False).evolve(EvolveSpec())
    slow = MotifEngine(temporal, store=False).evolve(EvolveSpec(incremental=False))

    assert len(fast.snapshots) == len(slow.snapshots) == NUM_SNAPSHOTS + 1
    for incremental, scratch in zip(fast.snapshots, slow.snapshots):
        if not np.array_equal(
            incremental.counts.to_array(), scratch.counts.to_array()
        ):
            raise AssertionError(
                f"parity violated at snapshot {incremental.index} "
                f"({incremental.label})"
            )

    affected = [
        snapshot.delta["affected_anchors"]
        for snapshot in fast.snapshots
        if snapshot.delta is not None
    ]
    payload = {
        "base_edges": BASE_EDGES,
        "snapshots": NUM_SNAPSHOTS + 1,
        "delta_edges": DELTA_EDGES,
        "incremental_seconds": fast.seconds,
        "from_scratch_seconds": slow.seconds,
        "speedup": (slow.seconds / fast.seconds) if fast.seconds else float("inf"),
        "bit_identical": True,
        "mean_affected_anchors": float(np.mean(affected)) if affected else 0.0,
        "total_edges": fast.snapshots[-1].num_hyperedges,
        "modes": fast.snapshot_modes(),
    }
    result_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_bench_evolve():
    from benchmarks.conftest import write_report

    payload = run_evolve_benchmark()
    lines = [
        f"chain: {payload['base_edges']}-edge base + "
        f"{payload['snapshots'] - 1} deltas x {payload['delta_edges']} edges "
        f"({payload['total_edges']} total)",
        f"{'path':<28} {'seconds':>10}",
        f"{'incremental (delta engine)':<28} "
        f"{payload['incremental_seconds']:>10.3f}",
        f"{'from-scratch rebuilds':<28} "
        f"{payload['from_scratch_seconds']:>10.3f}",
        f"speedup: {payload['speedup']:.1f}x "
        f"(gate >= {GATE:.0f}x); counts bit-identical; "
        f"mean affected anchors per delta: "
        f"{payload['mean_affected_anchors']:.1f}",
    ]
    write_report("bench_evolve", "\n".join(lines))
    assert payload["bit_identical"]
    assert payload["speedup"] >= GATE


if __name__ == "__main__":
    print(json.dumps(run_evolve_benchmark(), indent=2))
