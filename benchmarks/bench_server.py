"""HTTP service benchmark: cold vs. warm batches against a live server.

The serving claim of the HTTP front door: a batch POSTed to a *fresh*
service instance whose store directory was populated by an earlier instance
is served from the persistent tier — engines rebuild only the hypergraph,
every artifact (projection, counts, profile) comes off disk — so the warm
batch must be **≥5× faster** end-to-end *including* all HTTP/JSON overhead.
That is the same bar the raw store layer clears in
``bench_store_warm_start.py``; holding it through the network stack shows
the service adds bounded overhead, not a new bottleneck.

Each pass builds a brand-new server over the shared store directory
(exactly what a service restart gets), streams one mixed batch through the
real HTTP client, and verifies the warm pass is bit-identical to the cold
one and fully disk-served. Writes ``BENCH_server.json`` at the repo root so
the serving trajectory is tracked from PR to PR. Runnable as a pytest test
(asserts the gate) and as a script (``python benchmarks/bench_server.py``).
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from pathlib import Path

from repro.generators import generate_uniform_random
from repro.hypergraph import io as hio
from repro.store import ArtifactStore
from repro.store.client import ServiceClient
from repro.store.server import build_server, shutdown_gracefully

#: Seeded benchmark hypergraph (bench_store_warm_start's scale: cold
#: projection + profile dominate, small enough for CI).
NUM_NODES = 240
NUM_HYPEREDGES = 480
MEAN_SIZE = 3.5
MAX_SIZE = 7
SEED = 42

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_server.json"

#: Fields that legitimately differ between the cold and warm passes.
VOLATILE_KEYS = frozenset(
    {
        "projection_seconds",
        "counting_seconds",
        "seconds",
        "projection_cached",
        "from_cache",
        "cache_tier",
    }
)


def _requests(dataset_path: Path):
    """One mixed batch: exact counts plus a seeded 3-null profile."""
    return [
        {"source": str(dataset_path), "spec": {"type": "count"}},
        {
            "source": str(dataset_path),
            "spec": {"type": "profile", "num_random": 3, "seed": 0},
        },
    ]


def _serve_one_batch(store_dir: Path, dataset_path: Path):
    """Fresh server over *store_dir*, one streamed batch; seconds + results.

    Server startup is excluded from the timing — the measured quantity is
    batch latency against a running service, cold store vs. warm store.
    """
    server = build_server(
        port=0, store=ArtifactStore(store_dir), workers=2, backend="thread"
    )
    loop = threading.Thread(target=server.serve_forever, daemon=True)
    loop.start()
    try:
        client = ServiceClient(port=server.port, timeout=600.0)
        client.wait_until_healthy(timeout=30.0)
        start = time.perf_counter()
        results = client.batch(_requests(dataset_path))
        elapsed = time.perf_counter() - start
    finally:
        shutdown_gracefully(server, drain_seconds=10.0)
    return elapsed, results


def _stable(result: dict) -> dict:
    return {key: value for key, value in result.items() if key not in VOLATILE_KEYS}


def run_server_benchmark(result_path: Path = RESULT_PATH) -> dict:
    """Measure cold vs. warm service batches over one store; write JSON."""
    with tempfile.TemporaryDirectory(prefix="repro-server-bench-") as tmp:
        store_dir = Path(tmp) / "store"
        dataset_path = Path(tmp) / "bench.txt"
        hio.write_plain(
            generate_uniform_random(
                num_nodes=NUM_NODES,
                num_hyperedges=NUM_HYPEREDGES,
                mean_size=MEAN_SIZE,
                max_size=MAX_SIZE,
                seed=SEED,
            ),
            dataset_path,
        )
        cold_seconds, cold = _serve_one_batch(store_dir, dataset_path)
        warm_seconds, warm = _serve_one_batch(store_dir, dataset_path)

    for cold_result, warm_result in zip(cold, warm):
        if _stable(cold_result) != _stable(warm_result):
            raise AssertionError("warm service results diverged from cold")
        if not (warm_result["from_cache"] and warm_result["cache_tier"] == "disk"):
            raise AssertionError(
                f"warm {warm_result['kind']} was not disk-served "
                f"(tier={warm_result['cache_tier']!r}); benchmark void"
            )

    payload = {
        "nodes": NUM_NODES,
        "edges": NUM_HYPEREDGES,
        "requests": len(cold),
        "cold_batch_s": cold_seconds,
        "warm_batch_s": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
        "warm_tiers": [result["cache_tier"] for result in warm],
    }
    result_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_bench_server_warm_batch():
    from benchmarks.conftest import write_report

    payload = run_server_benchmark()
    write_report(
        "bench_server",
        "\n".join(
            [
                f"{'pass':<14} {'batch (s)':>10}",
                f"{'cold':<14} {payload['cold_batch_s']:>10.4f}",
                f"{'warm':<14} {payload['warm_batch_s']:>10.4f}",
                f"speedup: {payload['speedup']:.1f}x over HTTP "
                f"({payload['requests']} requests, warm tiers "
                f"{payload['warm_tiers']})",
            ]
        ),
    )
    assert payload["speedup"] >= 5.0


if __name__ == "__main__":
    print(json.dumps(run_server_benchmark(), indent=2))
