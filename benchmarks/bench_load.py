"""Load benchmark: latency percentiles, throughput and shedding at saturation.

Two claims of the fault-tolerant serving layer, measured against a live
server over a warm store:

1. **Throughput** — concurrent keep-alive clients hammering warm batches see
   bounded tail latency (p50/p99 reported, p99 gated leniently) and every
   request succeeds while the service runs inside its admission limit.
2. **Load shedding** — pushed past a deliberately tiny ``max_queue`` with
   artificially slowed units, the service refuses the overflow with
   *structured, retryable* 429s: zero hangs, zero 500s, zero connection
   errors. The rejection rate at saturation is reported, and every single
   failure must be a 429 — any other failure mode voids the benchmark.

Writes ``BENCH_load.json`` at the repo root so the serving trajectory is
tracked from PR to PR. Runnable as a pytest test (asserts the gates) and as
a script (``python benchmarks/bench_load.py``).
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List

from repro.generators import generate_uniform_random
from repro.hypergraph import io as hio
from repro.store import ArtifactStore
from repro.store import faults
from repro.store.client import ServiceClient, ServiceError
from repro.store.server import build_server, shutdown_gracefully

#: Small seeded dataset: the store serves warm hits, so the benchmark
#: measures the serving stack, not motif counting.
NUM_NODES = 120
NUM_HYPEREDGES = 240
SEED = 7

#: Concurrent clients and calls per client, per phase.
CLIENTS = 6
CALLS_PER_CLIENT = 8

#: Saturation phase: queue bound and injected per-unit slowdown.
SATURATION_MAX_QUEUE = 2
SLOW_UNIT_SECONDS = 0.05

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_load.json"


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _hammer(port: int, requests: List[dict], outcomes: List[Dict[str, float]]):
    """One client thread: sequential batches, no retries, outcomes recorded."""
    client = ServiceClient(port=port, timeout=60.0, retries=0)
    for _ in range(CALLS_PER_CLIENT):
        started = time.perf_counter()
        try:
            client.batch(requests)
        except ServiceError as error:
            outcomes.append(
                {
                    "ok": False,
                    "status": error.status or 0,
                    "retryable": error.retryable,
                    "seconds": time.perf_counter() - started,
                }
            )
        else:
            outcomes.append(
                {"ok": True, "status": 200, "seconds": time.perf_counter() - started}
            )
    client.close()


def _run_phase(port: int, requests: List[dict]) -> Dict[str, object]:
    outcomes: List[Dict[str, float]] = []
    threads = [
        threading.Thread(target=_hammer, args=(port, requests, outcomes))
        for _ in range(CLIENTS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    ok = [outcome for outcome in outcomes if outcome["ok"]]
    rejected = [
        outcome
        for outcome in outcomes
        if not outcome["ok"] and outcome["status"] == 429
    ]
    other = [
        outcome
        for outcome in outcomes
        if not outcome["ok"] and outcome["status"] != 429
    ]
    latencies = [outcome["seconds"] for outcome in ok]
    return {
        "requests": len(outcomes),
        "ok": len(ok),
        "rejected_429": len(rejected),
        "other_failures": len(other),
        "rejections_all_retryable": all(o.get("retryable") for o in rejected),
        "rejection_rate": len(rejected) / len(outcomes) if outcomes else 0.0,
        "rps": len(ok) / wall if wall > 0 else 0.0,
        "p50_ms": 1000.0 * _percentile(latencies, 0.50) if latencies else None,
        "p99_ms": 1000.0 * _percentile(latencies, 0.99) if latencies else None,
        "wall_seconds": wall,
    }


def run_load_benchmark(result_path: Path = RESULT_PATH) -> dict:
    """Measure warm-path throughput, then shedding at saturation; write JSON."""
    with tempfile.TemporaryDirectory(prefix="repro-load-bench-") as tmp:
        dataset_path = Path(tmp) / "bench.txt"
        hio.write_plain(
            generate_uniform_random(
                num_nodes=NUM_NODES, num_hyperedges=NUM_HYPEREDGES, seed=SEED
            ),
            dataset_path,
        )
        requests = [{"source": str(dataset_path), "spec": {"type": "count"}}]
        store_dir = Path(tmp) / "store"

        # Phase 1 — a roomy admission queue (every client fits): clean
        # warm-path throughput and latency, nothing rejected.
        server = build_server(
            port=0,
            store=ArtifactStore(store_dir),
            workers=4,
            backend="thread",
            max_queue=4 * CLIENTS,
        )
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            warm_client = ServiceClient(port=server.port, timeout=60.0)
            warm_client.wait_until_healthy(timeout=30.0)
            warm_client.batch(requests)  # populate the store: all else is warm
            warm_client.close()
            throughput = _run_phase(server.port, requests)
        finally:
            shutdown_gracefully(server, drain_seconds=10.0)

        # Phase 2 — a tiny queue plus slowed units over the same warm store:
        # the queue fills and the service must shed the overflow with
        # structured 429s, nothing else.
        server = build_server(
            port=0,
            store=ArtifactStore(store_dir),
            workers=4,
            backend="thread",
            max_queue=SATURATION_MAX_QUEUE,
        )
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            probe = ServiceClient(port=server.port, timeout=60.0)
            probe.wait_until_healthy(timeout=30.0)
            probe.close()
            faults.inject(
                "serve.unit", mode="sleep", seconds=SLOW_UNIT_SECONDS, times=None
            )
            try:
                saturation = _run_phase(server.port, requests)
            finally:
                faults.clear("serve.unit")
        finally:
            shutdown_gracefully(server, drain_seconds=10.0)

    payload = {
        "clients": CLIENTS,
        "calls_per_client": CALLS_PER_CLIENT,
        "max_queue": SATURATION_MAX_QUEUE,
        "slow_unit_seconds": SLOW_UNIT_SECONDS,
        "throughput": throughput,
        "saturation": saturation,
    }
    result_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_bench_load_shedding():
    from benchmarks.conftest import write_report

    payload = run_load_benchmark()
    throughput, saturation = payload["throughput"], payload["saturation"]
    write_report(
        "bench_load",
        "\n".join(
            [
                f"{'phase':<12} {'ok':>4} {'429':>4} {'rps':>8} "
                f"{'p50 (ms)':>9} {'p99 (ms)':>9}",
                f"{'throughput':<12} {throughput['ok']:>4} "
                f"{throughput['rejected_429']:>4} {throughput['rps']:>8.1f} "
                f"{throughput['p50_ms']:>9.1f} {throughput['p99_ms']:>9.1f}",
                f"{'saturation':<12} {saturation['ok']:>4} "
                f"{saturation['rejected_429']:>4} {saturation['rps']:>8.1f} "
                f"{saturation['p50_ms']:>9.1f} {saturation['p99_ms']:>9.1f}",
                f"saturation rejection rate: "
                f"{saturation['rejection_rate']:.0%} (all retryable: "
                f"{saturation['rejections_all_retryable']})",
            ]
        ),
    )
    # Throughput gates (lenient: CI machines vary widely).
    assert throughput["other_failures"] == 0
    assert throughput["ok"] == CLIENTS * CALLS_PER_CLIENT
    assert throughput["rps"] > 1.0
    assert throughput["p99_ms"] < 30_000.0
    # Shedding gates: overload surfaces ONLY as structured retryable 429s.
    assert saturation["other_failures"] == 0
    assert saturation["rejected_429"] > 0
    assert saturation["rejections_all_retryable"] is True
    assert saturation["ok"] > 0  # admitted batches still complete


if __name__ == "__main__":
    print(json.dumps(run_load_benchmark(), indent=2))
