"""Core-speed benchmark: CSR fast core vs. the seed object-graph path.

Times projection (Algorithm 1) and exact counting (MoCHy-E) on a seeded
synthetic hypergraph, once through the array-native fast core and once
through the per-triple seed implementation kept in
:mod:`repro.fastcore.reference`, and writes ``BENCH_core.json`` at the repo
root so the perf trajectory is tracked from PR to PR. Runnable both as a
pytest test and as a script (``python benchmarks/bench_core_speed.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.counting import count_exact
from repro.fastcore.reference import count_exact_reference, project_reference
from repro.generators import generate_uniform_random
from repro.projection import project

#: Seeded benchmark hypergraph (big enough for stable timings, small enough
#: for the reference path to finish in seconds).
NUM_NODES = 220
NUM_HYPEREDGES = 420
MEAN_SIZE = 3.5
MAX_SIZE = 7
SEED = 42

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"


def _time(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def run_core_speed_benchmark(result_path: Path = RESULT_PATH) -> dict:
    """Measure projection + exact counting on both paths; write the JSON."""
    hypergraph = generate_uniform_random(
        num_nodes=NUM_NODES,
        num_hyperedges=NUM_HYPEREDGES,
        mean_size=MEAN_SIZE,
        max_size=MAX_SIZE,
        seed=SEED,
    )
    hypergraph.csr()  # build the CSR view up front: shared by both fast stages

    projection_s, projection = _time(lambda: project(hypergraph))
    exact_s, fast_counts = _time(lambda: count_exact(hypergraph, projection))

    reference_projection_s, reference_projection = _time(
        lambda: project_reference(hypergraph)
    )
    reference_exact_s, reference_counts = _time(
        lambda: count_exact_reference(hypergraph, reference_projection)
    )

    if fast_counts != reference_counts:
        raise AssertionError("fast and reference counts diverged; benchmark void")

    fast_total = projection_s + exact_s
    reference_total = reference_projection_s + reference_exact_s
    payload = {
        "projection_s": projection_s,
        "exact_s": exact_s,
        "edges": hypergraph.num_hyperedges,
        "nodes": hypergraph.num_nodes,
        "hyperwedges": projection.num_hyperwedges,
        "instances": fast_counts.total(),
        "reference_projection_s": reference_projection_s,
        "reference_exact_s": reference_exact_s,
        "speedup": reference_total / fast_total if fast_total > 0 else float("inf"),
        # Per-anchor throughput of the batched exact kernel (every hyperedge
        # is an anchor of MoCHy-E's outer loop) — the unit the anchor-block
        # kernels optimize, tracked so block-layout regressions show up even
        # when the headline speedup stays above its gate.
        "exact_anchors_per_s": (
            hypergraph.num_hyperedges / exact_s if exact_s > 0 else float("inf")
        ),
    }
    result_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_bench_core_speed():
    from benchmarks.conftest import write_report

    payload = run_core_speed_benchmark()
    lines = [
        f"{'stage':<22} {'fast (s)':>10} {'seed (s)':>10}",
        f"{'projection':<22} {payload['projection_s']:>10.4f} "
        f"{payload['reference_projection_s']:>10.4f}",
        f"{'exact counting':<22} {payload['exact_s']:>10.4f} "
        f"{payload['reference_exact_s']:>10.4f}",
        f"overall speedup: {payload['speedup']:.1f}x on "
        f"{payload['edges']} hyperedges / {payload['hyperwedges']} hyperwedges",
        f"exact throughput: {payload['exact_anchors_per_s']:.0f} anchors/s",
    ]
    write_report("bench_core_speed", "\n".join(lines))
    assert payload["speedup"] >= 5.0


if __name__ == "__main__":
    print(json.dumps(run_core_speed_benchmark(), indent=2))
