"""Figure 7 — evolution of h-motif fractions in co-authorship data.

The paper computes, for yearly snapshots of coauth-DBLP, the fraction of
instances of each h-motif and observes (a) motifs 2 and 22 come to dominate
and (b) the fraction of open-motif instances rises steadily. This benchmark
regenerates both series on the synthetic temporal co-authorship hypergraph.
"""

from __future__ import annotations

from repro.analysis import motif_fraction_evolution
from repro.generators import generate_temporal_coauthorship

from benchmarks.conftest import write_report


def test_fig7_evolution_of_coauthorship(benchmark):
    temporal = generate_temporal_coauthorship(
        num_years=8,
        initial_authors=130,
        initial_papers=90,
        initial_team_reuse=0.15,
        final_team_reuse=0.75,
        initial_team_size=2.4,
        final_team_size=3.8,
        seed=11,
    )
    series = motif_fraction_evolution(temporal)

    # Benchmark counting one yearly snapshot (the unit of work of the study).
    first_year = temporal.timestamps()[0]
    snapshot = temporal.snapshot(first_year)
    from repro.counting import count_motifs

    benchmark.pedantic(count_motifs, args=(snapshot,), rounds=1, iterations=1)

    dominant = series.dominant_motifs(top=4)
    lines = [
        f"{'year':>6} {'instances':>10} {'open fraction':>14} "
        + " ".join(f"m{motif:>2}" for motif in dominant)
    ]
    for point in series.points:
        fractions = " ".join(f"{point.fractions[motif]:.2f}" for motif in dominant)
        lines.append(
            f"{point.timestamp:>6} {int(point.counts.total()):>10} "
            f"{point.open_fraction:>14.3f} {fractions}"
        )
    lines.append("")
    lines.append(f"dominant motifs (by average fraction): {dominant}")
    lines.append(f"open-fraction trend (slope per year) : {series.open_fraction_trend():+.4f}")
    lines.append(
        "\nShape check vs. the paper's Figure 7: a small number of motifs (the paper's "
        "2 and 22) dominate the distribution, and the open-motif fraction trends upward "
        "as collaboration becomes more hub-centred."
    )
    write_report("fig7_evolution", "\n".join(lines))

    assert len(series.points) >= 6
    assert series.open_fraction_trend() > -0.01
    # A few motifs dominate: the top four cover most instances in every year.
    for point in series.points:
        assert sum(point.fractions[motif] for motif in dominant) > 0.5
