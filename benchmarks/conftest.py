"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper's evaluation on
the synthetic stand-in corpus (see DESIGN.md §3 and §5). Expensive artefacts —
the corpus itself, per-dataset counts and characteristic profiles — are built
once per session here and shared across benchmark files.

As in the paper (Section 4.1), sparse datasets are counted exactly with
MoCHy-E while the dense ones (email, tags, threads) use MoCHy-A+ with a fixed
sampling ratio.

Every benchmark writes its report to ``benchmarks/results/<name>.txt`` (and
prints it), so the tables survive pytest's output capturing.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.counting import CountingRun, run_counting
from repro.generators import build_corpus, dataset_domain
from repro.hypergraph import Hypergraph
from repro.profile import CharacteristicProfile, characteristic_profile

#: Scale factor applied to every corpus dataset (keeps pure-Python counting fast).
CORPUS_SCALE = 0.4

#: Sampling ratio used for the dense domains, mirroring the paper's use of
#: MoCHy-A+ on its largest datasets.
DENSE_SAMPLING_RATIO = 0.15

#: Domains counted exactly (MoCHy-E) vs. approximately (MoCHy-A+).
EXACT_DOMAINS = ("coauthorship", "contact")

#: Number of randomized hypergraphs per dataset (the paper uses five).
NUM_RANDOM = 3

RESULTS_DIR = Path(__file__).parent / "results"


def algorithm_for(domain: str) -> Tuple[str, float | None]:
    """(algorithm, sampling ratio) used for a dataset of the given domain."""
    if domain in EXACT_DOMAINS:
        return "mochy-e", None
    return "mochy-a+", DENSE_SAMPLING_RATIO


def write_report(name: str, text: str) -> Path:
    """Persist a benchmark report and echo it to stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n===== {name} =====")
    print(text)
    return path


@pytest.fixture(scope="session")
def corpus() -> Dict[str, Tuple[Hypergraph, str]]:
    """The 11-dataset synthetic corpus at benchmark scale."""
    return build_corpus(scale=CORPUS_SCALE)


@pytest.fixture(scope="session")
def corpus_runs(corpus) -> Dict[str, CountingRun]:
    """Counting runs (counts + timings) for every corpus dataset."""
    runs: Dict[str, CountingRun] = {}
    for name, (hypergraph, domain) in corpus.items():
        algorithm, ratio = algorithm_for(domain)
        runs[name] = run_counting(
            hypergraph, algorithm=algorithm, sampling_ratio=ratio, seed=0
        )
    return runs


@pytest.fixture(scope="session")
def corpus_profiles(corpus, corpus_runs) -> Dict[str, CharacteristicProfile]:
    """Characteristic profiles for every corpus dataset."""
    profiles: Dict[str, CharacteristicProfile] = {}
    for name, (hypergraph, domain) in corpus.items():
        algorithm, ratio = algorithm_for(domain)
        profiles[name] = characteristic_profile(
            hypergraph,
            num_random=NUM_RANDOM,
            algorithm=algorithm,
            sampling_ratio=ratio,
            seed=0,
            real_counts=corpus_runs[name].counts,
        )
    return profiles


@pytest.fixture(scope="session")
def corpus_domains(corpus) -> Dict[str, str]:
    """Dataset name -> domain mapping."""
    return {name: dataset_domain(name) for name in corpus}
