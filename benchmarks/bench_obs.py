"""Observability overhead benchmark: instrumented warm path vs. metrics off.

The :mod:`repro.obs` registry instruments the hottest serving path — an
:class:`ArtifactStore` warm get resolving an artifact through the LSM disk
tier (``store.get`` outcome counters + per-shard ``LSM_GET_SECONDS``
histogram observations). Every mutator early-outs on ``registry.enabled``,
so disabling metrics must leave the warm path untouched and enabling them
should cost single-digit microseconds against a disk-bound get.

Timing a disk-bound path A/B is noisy (page cache, CPU frequency drift), so
the harness is built for robustness rather than raw speed:

* artifacts carry a **projection-scale payload** (the artifact class the
  serving warm path actually caches), so one get does representative work;
* enabled/disabled sweeps are **interleaved in small chunks** with the order
  flipped every round, cancelling drift slower than one chunk pair;
* the estimate is the **median of per-round ratios**, repeated over
  independent attempts and reduced by a second median.

The gate asserts the enabled path stays within :data:`MAX_OVERHEAD` of the
disabled one. Writes ``BENCH_obs.json`` at the repo root. Runnable as a
pytest test and as a script (``python benchmarks/bench_obs.py``).
"""

from __future__ import annotations

import hashlib
import json
import statistics
import tempfile
import time
from pathlib import Path
from typing import Dict

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.store import ArtifactStore

#: Artifacts resident in the store (spread over the LSM shard space).
NUM_ARTIFACTS = 64

#: Floats in the projection-like payload array (~50 KB uncompressed).
PAYLOAD_FLOATS = 6144

#: Warm gets per timed chunk (one side of one interleaved round).
GETS_PER_CHUNK = 32

#: Interleaved rounds per attempt; each round times both modes, order
#: alternating, and contributes one enabled/disabled ratio.
ROUNDS_PER_ATTEMPT = 48

#: Independent attempts; the final overhead is the median of their medians.
NUM_ATTEMPTS = 3

#: Acceptance gate: enabled warm path within 5% of the disabled one.
MAX_OVERHEAD = 0.05

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def _fingerprint(index: int) -> str:
    return hashlib.sha256(f"bench-obs-{index}".encode("ascii")).hexdigest()


def _payload(index: int) -> Dict[str, np.ndarray]:
    # Deterministic but non-constant values, so npz compression does
    # realistic work instead of collapsing a constant array.
    projection = (np.arange(PAYLOAD_FLOATS, dtype=np.float64) * (index + 3)) % 97.0
    return {"values": np.full(26, float(index)), "projection": projection}


def _seed(directory) -> ArtifactStore:
    # memory_items=0: every get exercises the instrumented disk tier rather
    # than the (also instrumented, but allocation-free) memory LRU.
    store = ArtifactStore(directory, memory_items=0)
    for index in range(NUM_ARTIFACTS):
        store.put(
            "count",
            _fingerprint(index),
            {"p": index},
            _payload(index),
            {"index": index},
            dataset="bench-obs",
        )
    assert store.stats.write_errors == 0
    return store


def _chunk(store: ArtifactStore, gets: int = GETS_PER_CHUNK) -> float:
    """Seconds for one warm-get chunk over the resident artifacts."""
    start = time.perf_counter()
    for op in range(gets):
        index = op % NUM_ARTIFACTS
        hit = store.get("count", _fingerprint(index), {"p": index})
        assert hit is not None
    return time.perf_counter() - start


def _attempt(store: ArtifactStore) -> Dict[str, float]:
    """One interleaved measurement pass: median ratio + per-mode medians."""
    ratios = []
    chunk_seconds = {True: [], False: []}
    for round_ in range(ROUNDS_PER_ATTEMPT):
        order = (True, False) if round_ % 2 == 0 else (False, True)
        times = {}
        for mode in order:
            obs_metrics.set_enabled(mode)
            times[mode] = _chunk(store)
        ratios.append(times[True] / times[False])
        for mode in (True, False):
            chunk_seconds[mode].append(times[mode])
    return {
        "ratio": statistics.median(ratios),
        "enabled_s": statistics.median(chunk_seconds[True]),
        "disabled_s": statistics.median(chunk_seconds[False]),
    }


def run_obs_benchmark(result_path: Path = RESULT_PATH) -> dict:
    """Interleave enabled/disabled warm gets; gate on the median overhead."""
    was_enabled = obs_metrics.metrics_enabled()
    attempts = []
    try:
        with tempfile.TemporaryDirectory(prefix="repro-obs-bench-") as tmp:
            store = _seed(Path(tmp))
            _chunk(store, gets=4 * GETS_PER_CHUNK)  # warm caches off-clock
            for _ in range(NUM_ATTEMPTS):
                attempts.append(_attempt(store))
    finally:
        obs_metrics.set_enabled(was_enabled)

    render_start = time.perf_counter()
    exposition = obs_metrics.render()
    render_seconds = time.perf_counter() - render_start

    overhead = statistics.median(a["ratio"] for a in attempts) - 1.0
    enabled_s = statistics.median(a["enabled_s"] for a in attempts)
    disabled_s = statistics.median(a["disabled_s"] for a in attempts)
    payload = {
        "artifacts": NUM_ARTIFACTS,
        "payload_floats": PAYLOAD_FLOATS,
        "gets_per_chunk": GETS_PER_CHUNK,
        "rounds_per_attempt": ROUNDS_PER_ATTEMPT,
        "attempts": NUM_ATTEMPTS,
        "enabled_us_per_get": enabled_s / GETS_PER_CHUNK * 1e6,
        "disabled_us_per_get": disabled_s / GETS_PER_CHUNK * 1e6,
        "overhead_fraction": overhead,
        "max_overhead": MAX_OVERHEAD,
        "render_ms": render_seconds * 1e3,
        "exposition_lines": len(exposition.splitlines()),
    }
    result_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_bench_obs():
    from benchmarks.conftest import write_report

    payload = run_obs_benchmark()
    lines = [
        f"{payload['attempts']} attempts x {payload['rounds_per_attempt']} "
        f"interleaved rounds x {payload['gets_per_chunk']} warm disk-tier "
        f"gets per mode (median of per-round ratios)",
        f"{'mode':<20} {'us/get':>10}",
        f"{'metrics enabled':<20} {payload['enabled_us_per_get']:>10.2f}",
        f"{'metrics disabled':<20} {payload['disabled_us_per_get']:>10.2f}",
        f"overhead: {payload['overhead_fraction'] * 100:+.2f}% "
        f"(gate: <= {payload['max_overhead'] * 100:.0f}%)",
        f"render: {payload['exposition_lines']} exposition lines in "
        f"{payload['render_ms']:.2f} ms",
    ]
    write_report("bench_obs", "\n".join(lines))
    assert payload["overhead_fraction"] <= MAX_OVERHEAD, (
        f"metrics overhead {payload['overhead_fraction'] * 100:.2f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}%"
    )


if __name__ == "__main__":
    print(json.dumps(run_obs_benchmark(), indent=2))
