"""Table 2 — statistics of the (synthetic stand-in) corpus.

The paper's Table 2 reports, per dataset: |V|, |E|, the maximum hyperedge
size, the number of hyperwedges |∧| and the number of h-motif instances. This
benchmark regenerates the same columns for the 11 synthetic datasets and
benchmarks the summary computation (projection + hyperwedge count) itself.
"""

from __future__ import annotations

from repro.hypergraph import summarize

from benchmarks.conftest import write_report


def test_table2_dataset_statistics(benchmark, corpus, corpus_runs, corpus_domains):
    summaries = {name: summarize(hypergraph) for name, (hypergraph, _) in corpus.items()}

    # Benchmark the Table-2 statistics computation on one mid-size dataset.
    sample_name = "contact-primary-like"
    benchmark(summarize, corpus[sample_name][0])

    header = (
        f"{'dataset':<24} {'domain':<13} {'|V|':>6} {'|E|':>6} {'max|e|':>7} "
        f"{'|∧|':>8} {'# h-motif instances':>20}"
    )
    lines = [header, "-" * len(header)]
    for name, summary in summaries.items():
        instances = corpus_runs[name].counts.total()
        lines.append(
            f"{name:<24} {corpus_domains[name]:<13} {summary.num_nodes:>6} "
            f"{summary.num_hyperedges:>6} {summary.max_hyperedge_size:>7} "
            f"{summary.num_hyperwedges:>8} {instances:>20.3e}"
        )
    lines.append("")
    lines.append(
        "Shape check vs. the paper's Table 2: tags/threads/email datasets have the "
        "largest instance counts relative to their sizes; co-authorship and contact "
        "datasets are sparser."
    )
    write_report("table2_dataset_stats", "\n".join(lines))

    # Basic sanity: every dataset produced hyperedges and instances.
    for name, summary in summaries.items():
        assert summary.num_hyperedges > 0
        assert corpus_runs[name].counts.total() > 0
